package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"cosm/internal/obs"
)

// Client-side errors.
var (
	// ErrClientClosed is returned by calls on a closed client, including
	// calls in flight when the connection breaks.
	ErrClientClosed = errors.New("wire: client closed")
	// ErrRemote wraps failures reported by the remote node (application
	// errors, unknown services or operations, protocol violations).
	ErrRemote = errors.New("wire: remote error")
)

// RemoteError is the client-side view of a non-OK response. It wraps
// ErrRemote and preserves the status class so callers can distinguish,
// e.g., an FSM protocol violation from an application error.
type RemoteError struct {
	Status Status
	Msg    string
	// RetryAfter is the server's backoff hint on StatusOverloaded
	// (zero when the server gave none).
	RetryAfter time.Duration
}

// Error formats the remote failure.
func (e *RemoteError) Error() string {
	if e.Msg == "" {
		return fmt.Sprintf("wire: remote error: %s", e.Status)
	}
	return fmt.Sprintf("wire: remote error: %s: %s", e.Status, e.Msg)
}

// Unwrap makes errors.Is(err, ErrRemote) hold for all remote errors.
func (e *RemoteError) Unwrap() error { return ErrRemote }

// defaultWriteStall caps how long one frame write may block on a stuck
// peer socket when the caller's context has no deadline of its own. A
// write that exceeds it breaks the connection: past that point the
// frame may be half-sent and the stream is unusable anyway.
const defaultWriteStall = 30 * time.Second

// Client is a multiplexing RPC client for one endpoint. Concurrent Call
// invocations share the connection; responses are correlated by frame
// id. Clients are safe for concurrent use.
type Client struct {
	endpoint string
	conn     net.Conn
	// rec, when enabled, records one client-kind span per traced call
	// (set by the owning Pool; see WithPoolRecorder).
	rec *obs.SpanRecorder

	writeMu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *Response
	closed  bool
	readErr error

	readDone chan struct{}
}

// Dial connects an RPC client to an endpoint ("tcp:..." or "loop:...").
func Dial(endpoint string) (*Client, error) {
	conn, err := DialConn(endpoint)
	if err != nil {
		return nil, err
	}
	return NewClientConn(endpoint, conn), nil
}

// NewClientConn wraps an already-established transport connection in an
// RPC client. The client owns conn from here on. Most callers want Dial
// or a Pool; this constructor exists for custom transports such as the
// fault-injecting FaultNet.
func NewClientConn(endpoint string, conn net.Conn) *Client {
	c := &Client{
		endpoint: endpoint,
		conn:     conn,
		pending:  map[uint64]chan *Response{},
		readDone: make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// Endpoint returns the endpoint this client is connected to.
func (c *Client) Endpoint() string { return c.endpoint }

func (c *Client) readLoop() {
	defer close(c.readDone)
	for {
		f, err := readFrame(c.conn)
		if err != nil {
			c.failAll(err)
			return
		}
		if f.ftype != frameResponse {
			c.failAll(fmt.Errorf("%w: unexpected frame type %d", ErrBadFrame, f.ftype))
			return
		}
		resp, err := decodeResponse(f.version, f.payload)
		if err != nil {
			c.failAll(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.id]
		delete(c.pending, f.id)
		c.mu.Unlock()
		if ok {
			ch <- resp // buffered; never blocks
		}
	}
}

// failAll marks the client broken and wakes all waiters.
func (c *Client) failAll(err error) {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		c.readErr = err
	}
	pending := c.pending
	c.pending = map[uint64]chan *Response{}
	c.mu.Unlock()
	_ = c.conn.Close()
	for _, ch := range pending {
		close(ch) // receivers translate a closed channel into ErrClientClosed
	}
}

// broken reports whether the client can no longer carry calls.
func (c *Client) broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// Call performs one RPC: it sends the request and waits for the matching
// response or ctx cancellation. A ctx deadline is stamped into the
// request frame as a TTL, propagating the caller's remaining budget to
// the server; a trace carried by ctx (obs.WithTrace) is stamped into the
// frame's trace metadata, so the server logs the same trace ID the
// caller minted. With a span recorder attached, each traced call mints a
// per-hop child span — stamped into the frame, so the server's handler
// span parents at it — and records it with the call's outcome and
// duration. Abandoning the call (ctx cancelled or expired) sends a
// best-effort cancel frame so server-side work stops too. On a non-OK
// status it returns a *RemoteError wrapping ErrRemote.
func (c *Client) Call(ctx context.Context, req *Request) (body []byte, err error) {
	trace := obs.TraceFrom(ctx)
	if c.rec.Enabled() && trace.Valid() {
		trace = trace.Child()
		start := time.Now()
		defer func() {
			c.rec.Record(obs.Span{
				Trace:    trace.ID,
				ID:       trace.Span,
				Parent:   trace.Parent,
				Op:       req.Service + "/" + req.Op,
				Peer:     c.endpoint,
				Kind:     obs.SpanClient,
				Status:   attemptStatusLabel(err),
				Start:    start,
				Duration: time.Since(start),
			})
		}()
	}
	var ttl uint64
	if d, ok := ctx.Deadline(); ok {
		// An already-expired budget is not worth a round trip.
		if !time.Now().Before(d) {
			return nil, fmt.Errorf("wire: call %s/%s: %w", req.Service, req.Op, context.DeadlineExceeded)
		}
		ttl = ttlOf(d, time.Now())
	}
	ch := make(chan *Response, 1)
	c.mu.Lock()
	if c.closed {
		err := c.readErr
		c.mu.Unlock()
		return nil, closeErr(err)
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	// A write deadline (the caller's, capped at defaultWriteStall)
	// bounds the time one stuck peer socket can hold writeMu: without
	// it a single wedged write would block every concurrent caller of
	// this client forever.
	deadline := time.Now().Add(defaultWriteStall)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	c.writeMu.Lock()
	_ = c.conn.SetWriteDeadline(deadline)
	werr := writeFrame(c.conn, frame{
		ftype:    frameRequest,
		id:       id,
		ttl:      ttl,
		traceID:  trace.ID,
		parentID: trace.Span,
		payload:  encodeRequest(req),
	})
	_ = c.conn.SetWriteDeadline(time.Time{})
	c.writeMu.Unlock()
	if werr != nil {
		// A failed write may have left a partial frame on the stream;
		// the connection is unusable for every caller, not just this
		// one.
		c.failAll(werr)
		return nil, fmt.Errorf("wire: send %s/%s: %w", req.Service, req.Op, werr)
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.readErr
			c.mu.Unlock()
			return nil, closeErr(err)
		}
		if resp.Status != StatusOK {
			return nil, &RemoteError{Status: resp.Status, Msg: resp.ErrMsg, RetryAfter: resp.RetryAfter}
		}
		return resp.Body, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		// Tell the server the caller has given up so it can cancel the
		// request's context. Best-effort: a lost cancel only means the
		// server finishes work nobody will read.
		c.sendCancel(id)
		return nil, fmt.Errorf("wire: call %s/%s: %w", req.Service, req.Op, ctx.Err())
	}
}

// sendCancel emits a cancel frame for id; failures break the connection
// like any other failed write (a half-sent frame poisons the stream).
func (c *Client) sendCancel(id uint64) {
	if c.broken() {
		return
	}
	c.writeMu.Lock()
	_ = c.conn.SetWriteDeadline(time.Now().Add(defaultWriteStall))
	err := writeFrame(c.conn, frame{ftype: frameCancel, id: id})
	_ = c.conn.SetWriteDeadline(time.Time{})
	c.writeMu.Unlock()
	if err != nil {
		c.failAll(err)
	}
}

func closeErr(cause error) error {
	if cause == nil {
		return ErrClientClosed
	}
	return fmt.Errorf("%w: %v", ErrClientClosed, cause)
}

// Close tears down the connection; in-flight calls fail with
// ErrClientClosed. Safe to call multiple times.
func (c *Client) Close() error {
	c.failAll(nil)
	<-c.readDone
	return nil
}

// PoolStats counts resilience events across a Pool's lifetime
// (monotonic, goroutine-safe).
type PoolStats struct {
	// Dials and DialFailures count dial attempts and their failures.
	Dials        uint64
	DialFailures uint64
	// Retries counts extra attempts made by Call beyond the first.
	Retries uint64
	// FailFast counts requests rejected immediately by an open
	// circuit breaker.
	FailFast uint64
	// BreakerOpens counts closed/half-open -> open transitions.
	BreakerOpens uint64
	// Sheds counts StatusOverloaded responses received: attempts the
	// server rejected under admission control or while draining.
	Sheds uint64
}

// Pool is a cache of Clients keyed by endpoint, used by the binder: a
// node talking to many peers reuses one connection per peer.
//
// Beyond caching, the Pool is the resilience layer of the stack:
//   - dials happen outside the pool lock with per-endpoint
//     singleflight, so one slow dial neither blocks other endpoints
//     nor is duplicated by concurrent callers;
//   - each endpoint has a circuit breaker (closed -> open after
//     consecutive failures -> half-open probe after a cooldown), so a
//     black-holed endpoint fails fast instead of stalling every
//     caller;
//   - Call performs one logical RPC under the pool's CallPolicy,
//     retrying connection-class failures with exponential backoff.
//
// The zero value is not usable; call NewPool.
type Pool struct {
	dialer        func(ctx context.Context, endpoint string) (net.Conn, error)
	policy        CallPolicy
	breakerPolicy BreakerPolicy
	now           func() time.Time
	metrics       *ClientMetrics
	recorder      *obs.SpanRecorder
	events        *obs.EventLog

	mu       sync.Mutex
	clients  map[string]*Client
	dialing  map[string]*dialCall
	breakers map[string]*breaker
	closed   bool

	dials        atomic.Uint64
	dialFailures atomic.Uint64
	retries      atomic.Uint64
	failFast     atomic.Uint64
	breakerOpens atomic.Uint64
	sheds        atomic.Uint64
}

// dialCall is one in-flight dial shared by all concurrent Gets for the
// same endpoint (per-endpoint singleflight).
type dialCall struct {
	done chan struct{}
	c    *Client
	err  error
}

// PoolOption configures a Pool.
type PoolOption func(*Pool)

// defaultDialTimeout bounds a pool dial even when the caller's context
// carries no deadline of its own: a black-holed endpoint (SYN drop)
// must not absorb a dialer — and its singleflight followers — for the
// OS TCP timeout (~2 minutes).
const defaultDialTimeout = 10 * time.Second

// defaultDial is the pool's default dialer: DialConnContext under the
// caller's context, capped at defaultDialTimeout.
func defaultDial(ctx context.Context, endpoint string) (net.Conn, error) {
	ctx, cancel := context.WithTimeout(ctx, defaultDialTimeout)
	defer cancel()
	return DialConnContext(ctx, endpoint)
}

// WithDialer substitutes the transport dialer (default: DialConnContext
// capped at defaultDialTimeout). The fault-injecting FaultNet plugs in
// here. The dialer must honour ctx: a dial outliving its context defeats
// Get's and Call's timeout guarantees.
func WithDialer(dial func(ctx context.Context, endpoint string) (net.Conn, error)) PoolOption {
	return func(p *Pool) { p.dialer = dial }
}

// WithCallPolicy sets the retry/backoff policy used by Call.
func WithCallPolicy(policy CallPolicy) PoolOption {
	return func(p *Pool) { p.policy = policy }
}

// WithBreakerPolicy sets the per-endpoint circuit breaker policy. A
// Threshold below 1 disables breaking entirely.
func WithBreakerPolicy(policy BreakerPolicy) PoolOption {
	return func(p *Pool) { p.breakerPolicy = policy }
}

// WithPoolClock injects the time source driving breaker cooldowns
// (tests use a fake clock).
func WithPoolClock(now func() time.Time) PoolOption {
	return func(p *Pool) { p.now = now }
}

// WithPoolMetrics records the pool's dial, retry, shed and breaker
// activity plus per-endpoint call latency into m (see NewClientMetrics).
// A nil m — the result of NewClientMetrics on a nil registry — disables
// recording at negligible cost.
func WithPoolMetrics(m *ClientMetrics) PoolOption {
	return func(p *Pool) { p.metrics = m }
}

// WithPoolRecorder attaches the flight recorder: every traced call made
// through the pool's clients records one client-kind span (op, peer,
// status, duration) into r. A nil r — recording off — costs nothing.
func WithPoolRecorder(r *obs.SpanRecorder) PoolOption {
	return func(p *Pool) { p.recorder = r }
}

// WithPoolEvents routes circuit-breaker state transitions into the
// cluster event timeline ev (endpoint and new state), so a post-mortem
// can see *which* peers the breakers condemned and when. A nil ev
// disables recording.
func WithPoolEvents(ev *obs.EventLog) PoolOption {
	return func(p *Pool) { p.events = ev }
}

// NewPool returns an empty client pool with the default call and
// breaker policies.
func NewPool(opts ...PoolOption) *Pool {
	p := &Pool{
		dialer:        defaultDial,
		policy:        DefaultCallPolicy(),
		breakerPolicy: DefaultBreakerPolicy(),
		now:           time.Now,
		clients:       map[string]*Client{},
		dialing:       map[string]*dialCall{},
		breakers:      map[string]*breaker{},
	}
	for _, o := range opts {
		o(p)
	}
	if p.metrics != nil {
		p.metrics.reg.GaugeFunc("cosm_client_breakers_open",
			"Endpoints whose circuit breaker is currently open.",
			func() float64 {
				p.mu.Lock()
				defer p.mu.Unlock()
				n := 0
				for _, b := range p.breakers {
					if b.current() == BreakerOpen {
						n++
					}
				}
				return float64(n)
			})
	}
	return p
}

// Policy returns the pool's call policy.
func (p *Pool) Policy() CallPolicy { return p.policy }

// Stats returns a snapshot of the pool's resilience counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Dials:        p.dials.Load(),
		DialFailures: p.dialFailures.Load(),
		Retries:      p.retries.Load(),
		FailFast:     p.failFast.Load(),
		BreakerOpens: p.breakerOpens.Load(),
		Sheds:        p.sheds.Load(),
	}
}

// breakerFor returns the endpoint's breaker, creating it lazily.
// Callers must hold p.mu.
func (p *Pool) breakerFor(endpoint string) *breaker {
	b, ok := p.breakers[endpoint]
	if !ok {
		b = newBreaker(p.breakerPolicy)
		if p.metrics != nil || p.events != nil {
			metrics, events, ep := p.metrics, p.events, endpoint
			b.onTransition = func(to BreakerState) {
				metrics.breakerTransition(to)
				events.Record("breaker", "endpoint", ep, "to", string(to))
			}
		}
		p.breakers[endpoint] = b
	}
	return b
}

// BreakerState reports the observable circuit state for endpoint.
// Endpoints never seen (or with breaking disabled) read as closed.
func (p *Pool) BreakerState(endpoint string) BreakerState {
	p.mu.Lock()
	b, ok := p.breakers[endpoint]
	p.mu.Unlock()
	if !ok {
		return BreakerClosed
	}
	return b.current()
}

// noteFailure feeds a dial/transport failure into the endpoint's
// breaker.
func (p *Pool) noteFailure(endpoint string) {
	p.mu.Lock()
	b := p.breakerFor(endpoint)
	p.mu.Unlock()
	if b.failure(p.now()) {
		p.breakerOpens.Add(1)
	}
}

// noteSuccess feeds evidence of a live endpoint into its breaker.
func (p *Pool) noteSuccess(endpoint string) {
	p.mu.Lock()
	b, ok := p.breakers[endpoint]
	p.mu.Unlock()
	if ok {
		b.success()
	}
}

// noteShed feeds a StatusOverloaded response into the endpoint's
// breaker. A shed is weighed distinctly from connection death: it
// proves the endpoint alive (closing a half-open circuit) without
// excusing earlier connection failures the way a success would.
func (p *Pool) noteShed(endpoint string) {
	p.sheds.Add(1)
	p.metrics.shed()
	p.mu.Lock()
	b, ok := p.breakers[endpoint]
	p.mu.Unlock()
	if ok {
		b.shed()
	}
}

// Get returns a connected client for endpoint, dialing if needed. A
// previously cached client that has since broken is replaced. The dial
// itself runs outside the pool lock under ctx (capped by the dialer's
// own bound, defaultDialTimeout for the default dialer): concurrent
// Gets for the same endpoint share one dial, a slow dial to one
// endpoint does not block Gets for others, and a caller whose ctx
// expires stops waiting even if the shared dial is still in flight.
// While the endpoint's circuit breaker is open, Get fails fast with
// ErrCircuitOpen.
func (p *Pool) Get(ctx context.Context, endpoint string) (*Client, error) {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil, ErrClientClosed
		}
		if c, ok := p.clients[endpoint]; ok {
			if !c.broken() {
				p.mu.Unlock()
				p.metrics.reuse()
				return c, nil
			}
			delete(p.clients, endpoint)
		}
		if dc, ok := p.dialing[endpoint]; ok {
			// During half-open the in-flight dial is the breaker's
			// single probe: everyone else fails fast instead of
			// queueing behind a dial to a likely-dead endpoint.
			if b, known := p.breakers[endpoint]; known && b.current() == BreakerHalfOpen {
				p.mu.Unlock()
				p.failFast.Add(1)
				p.metrics.failedFast()
				return nil, fmt.Errorf("%w: probe in flight (endpoint %s)", ErrCircuitOpen, endpoint)
			}
			p.mu.Unlock()
			select {
			case <-dc.done:
			case <-ctx.Done():
				return nil, fmt.Errorf("wire: dial %s: %w", endpoint, ctx.Err())
			}
			if dc.err != nil {
				return nil, dc.err
			}
			if !dc.c.broken() {
				return dc.c, nil
			}
			continue // the shared dial died immediately; start over
		}
		b := p.breakerFor(endpoint)
		if err := b.allow(p.now()); err != nil {
			p.mu.Unlock()
			p.failFast.Add(1)
			p.metrics.failedFast()
			return nil, fmt.Errorf("%w (endpoint %s)", err, endpoint)
		}
		dc := &dialCall{done: make(chan struct{})}
		p.dialing[endpoint] = dc
		dial := p.dialer
		p.mu.Unlock()

		p.dials.Add(1)
		p.metrics.dialStarted()
		conn, err := dial(ctx, endpoint)
		var c *Client
		if err == nil {
			c = NewClientConn(endpoint, conn)
			c.rec = p.recorder
		}

		p.mu.Lock()
		delete(p.dialing, endpoint)
		closed := p.closed
		if err == nil && !closed {
			p.clients[endpoint] = c
		}
		p.mu.Unlock()

		if err != nil {
			p.dialFailures.Add(1)
			p.metrics.dialFailed()
			if b.failure(p.now()) {
				p.breakerOpens.Add(1)
			}
			dc.err = err
			close(dc.done)
			return nil, err
		}
		if closed {
			_ = c.Close()
			dc.err = ErrClientClosed
			close(dc.done)
			return nil, ErrClientClosed
		}
		b.success() // a completed dial is evidence of a live endpoint
		dc.c = c
		close(dc.done)
		return c, nil
	}
}

// Call performs one logical RPC against endpoint under the pool's
// CallPolicy: per-attempt timeouts (covering dial and call alike),
// bounded retries with exponential backoff and jitter, and the
// endpoint's circuit breaker. Only connection-class failures are
// retried (see Transient); remote application errors return
// immediately. Because a timed-out attempt may nonetheless have
// executed server-side (only the response was late), Call must carry
// idempotent operations only — non-idempotent invocations go through
// Client.Call directly, exactly once (see cosm.Conn.Invoke).
func (p *Pool) Call(ctx context.Context, endpoint string, req *Request) ([]byte, error) {
	return p.CallWith(ctx, endpoint, req, p.policy)
}

// CallWith is Call under an explicit policy.
func (p *Pool) CallWith(ctx context.Context, endpoint string, req *Request, policy CallPolicy) ([]byte, error) {
	attempts := policy.attempts()
	var lastErr error
	attempt := 1
	for ; ; attempt++ {
		var retryAfter time.Duration
		start := time.Now()
		actx, cancel := policy.attemptCtx(ctx)
		c, err := p.Get(actx, endpoint)
		if err == nil {
			var body []byte
			body, err = c.Call(actx, req)
			if err == nil {
				cancel()
				p.metrics.observeAttempt(endpoint, time.Since(start), nil)
				p.noteSuccess(endpoint)
				return body, nil
			}
			if !Transient(err) {
				cancel()
				p.metrics.observeAttempt(endpoint, time.Since(start), err)
				if errors.Is(err, ErrRemote) {
					// Any remote response proves the endpoint alive.
					p.noteSuccess(endpoint)
				}
				return nil, err
			}
			var remote *RemoteError
			switch {
			case errors.As(err, &remote):
				// A transient remote response (overloaded shed, expired
				// deadline): the request provably did not execute and the
				// endpoint is provably alive — back off and retry,
				// honouring the server's hint, without condemning the
				// connection.
				if remote.Status == StatusOverloaded {
					p.noteShed(endpoint)
					retryAfter = remote.RetryAfter
				} else {
					p.noteSuccess(endpoint)
				}
			case c.broken():
				// Connection-class failure. Only a broken client condemns
				// the shared connection: on a per-attempt timeout with the
				// connection still live, the client is kept — dropping it
				// would fail every concurrent in-flight call multiplexed
				// on it — and no breaker failure is recorded against a
				// merely slow endpoint.
				p.Drop(endpoint)
				p.noteFailure(endpoint)
			}
		}
		cancel()
		p.metrics.observeAttempt(endpoint, time.Since(start), err)
		lastErr = err
		if attempt >= attempts {
			break
		}
		if ctx.Err() != nil {
			break
		}
		// An overloaded server's retry-after hint takes precedence over a
		// shorter policy backoff: retrying into a shedding server sooner
		// than it asked only feeds the overload.
		d := policy.backoff(attempt)
		if retryAfter > d {
			d = retryAfter
		}
		if d > 0 {
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil, fmt.Errorf("wire: call %s/%s: %w", req.Service, req.Op, ctx.Err())
			case <-t.C:
			}
		}
		p.retries.Add(1)
		p.metrics.retry()
	}
	return nil, fmt.Errorf("wire: call %s/%s: %d of %d attempt(s) failed: %w", req.Service, req.Op, attempt, attempts, lastErr)
}

// Drop removes and closes the cached client for endpoint, if any.
func (p *Pool) Drop(endpoint string) {
	p.mu.Lock()
	c, ok := p.clients[endpoint]
	delete(p.clients, endpoint)
	p.mu.Unlock()
	if ok {
		_ = c.Close()
	}
}

// Close closes all cached clients.
func (p *Pool) Close() error {
	p.mu.Lock()
	clients := p.clients
	p.clients = map[string]*Client{}
	p.closed = true
	p.mu.Unlock()
	for _, c := range clients {
		_ = c.Close()
	}
	return nil
}
