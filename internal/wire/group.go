package wire

import (
	"context"
	"sort"
	"sync"
)

// Group is a set of endpoints that can be addressed as one — the
// communication level's multicast/broadcast function (Fig. 6). Calls fan
// out concurrently over a shared Pool and results are gathered per
// member. Groups are safe for concurrent use.
type Group struct {
	pool *Pool

	mu      sync.Mutex
	members map[string]bool
}

// NewGroup returns an empty group drawing connections from pool.
func NewGroup(pool *Pool) *Group {
	return &Group{pool: pool, members: map[string]bool{}}
}

// Join adds an endpoint to the group (idempotent).
func (g *Group) Join(endpoint string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.members[endpoint] = true
}

// Leave removes an endpoint from the group (idempotent).
func (g *Group) Leave(endpoint string) {
	g.mu.Lock()
	defer g.mu.Unlock()
	delete(g.members, endpoint)
}

// Members returns the endpoints in the group, sorted.
func (g *Group) Members() []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	members := make([]string, 0, len(g.members))
	for m := range g.members {
		members = append(members, m)
	}
	sort.Strings(members)
	return members
}

// Size returns the number of members.
func (g *Group) Size() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.members)
}

// GroupResult is the per-member outcome of a broadcast.
type GroupResult struct {
	Endpoint string
	Body     []byte
	Err      error
}

// Broadcast sends req to every member concurrently and gathers all
// results, ordered by endpoint. A member's dial or call failure appears
// in its result; the broadcast itself always completes.
func (g *Group) Broadcast(ctx context.Context, req *Request) []GroupResult {
	members := g.Members()
	results := make([]GroupResult, len(members))
	var wg sync.WaitGroup
	for i, m := range members {
		wg.Add(1)
		go func(i int, endpoint string) {
			defer wg.Done()
			results[i] = GroupResult{Endpoint: endpoint}
			client, err := g.pool.Get(ctx, endpoint)
			if err != nil {
				results[i].Err = err
				return
			}
			body, err := client.Call(ctx, req)
			results[i].Body = body
			results[i].Err = err
		}(i, m)
	}
	wg.Wait()
	return results
}

// Anycast tries members in sorted order and returns the first successful
// response. It returns the last error if every member fails, or
// ErrClientClosed if the group is empty.
func (g *Group) Anycast(ctx context.Context, req *Request) ([]byte, error) {
	var lastErr error = ErrClientClosed
	for _, m := range g.Members() {
		client, err := g.pool.Get(ctx, m)
		if err != nil {
			lastErr = err
			continue
		}
		body, err := client.Call(ctx, req)
		if err == nil {
			return body, nil
		}
		lastErr = err
	}
	return nil, lastErr
}
