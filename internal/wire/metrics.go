package wire

import (
	"context"
	"errors"
	"strings"
	"time"

	"cosm/internal/obs"
)

// Metric naming scheme (see DESIGN.md "Observability"):
//
//	cosm_<component>_<what>_<unit>
//
// The wire layer owns the cosm_client_* (Pool) and cosm_server_*
// (Server) families. Label cardinality is bounded by obs (64 values per
// vec, overflow collapsing into "_other"), so endpoint- and op-labelled
// families cannot grow without bound.

// ClientMetrics binds the client-side (Pool) metric families of a
// registry. A nil *ClientMetrics — what NewClientMetrics returns for a
// nil registry — records nothing, so instrumented paths need no
// branches.
type ClientMetrics struct {
	reg          *obs.Registry
	latency      *obs.HistogramVec // cosm_client_call_seconds{endpoint}
	status       *obs.CounterVec   // cosm_client_calls_total{status}
	dials        *obs.Counter
	dialFailures *obs.Counter
	reuses       *obs.Counter
	retries      *obs.Counter
	failFast     *obs.Counter
	sheds        *obs.Counter
	breaker      *obs.CounterVec // cosm_client_breaker_transitions_total{to}
}

// NewClientMetrics creates (or interns) the cosm_client_* families in
// reg. Returns nil on a nil registry.
func NewClientMetrics(reg *obs.Registry) *ClientMetrics {
	if reg == nil {
		return nil
	}
	return &ClientMetrics{
		reg:          reg,
		latency:      reg.HistogramVec("cosm_client_call_seconds", "Per-attempt RPC latency by endpoint (dial included).", "endpoint", nil),
		status:       reg.CounterVec("cosm_client_calls_total", "RPC attempts by outcome status.", "status"),
		dials:        reg.Counter("cosm_client_dials_total", "Pool dial attempts."),
		dialFailures: reg.Counter("cosm_client_dial_failures_total", "Pool dial failures."),
		reuses:       reg.Counter("cosm_client_conn_reuse_total", "Gets served by an already-pooled connection."),
		retries:      reg.Counter("cosm_client_retries_total", "Extra call attempts beyond the first."),
		failFast:     reg.Counter("cosm_client_failfast_total", "Requests rejected immediately by an open circuit breaker."),
		sheds:        reg.Counter("cosm_client_sheds_total", "StatusOverloaded responses received."),
		breaker:      reg.CounterVec("cosm_client_breaker_transitions_total", "Circuit breaker state transitions by new state.", "to"),
	}
}

// ClientSnapshot is a point-in-time copy of the client-side families
// for callers that render their own interval views (marketsim's
// per-phase chaos table): take one snapshot per phase boundary and diff
// adjacent pairs.
type ClientSnapshot struct {
	Calls   map[string]uint64           // attempts by status label
	Latency map[string]obs.HistSnapshot // per-attempt latency by endpoint
	Sheds   uint64
	Retries uint64
}

// Snapshot copies the current client metric values (zero value on nil).
func (m *ClientMetrics) Snapshot() ClientSnapshot {
	if m == nil {
		return ClientSnapshot{}
	}
	return ClientSnapshot{
		Calls:   m.status.Snapshot(),
		Latency: m.latency.Snapshot(),
		Sheds:   m.sheds.Value(),
		Retries: m.retries.Value(),
	}
}

// observeAttempt records one call attempt's latency and outcome.
func (m *ClientMetrics) observeAttempt(endpoint string, d time.Duration, err error) {
	if m == nil {
		return
	}
	m.latency.With(endpoint).Observe(d.Seconds())
	m.status.With(attemptStatusLabel(err)).Inc()
}

// breakerTransition records one breaker state change.
func (m *ClientMetrics) breakerTransition(to BreakerState) {
	if m == nil {
		return
	}
	m.breaker.With(string(to)).Inc()
}

func (m *ClientMetrics) dialStarted() {
	if m == nil {
		return
	}
	m.dials.Inc()
}

func (m *ClientMetrics) dialFailed() {
	if m == nil {
		return
	}
	m.dialFailures.Inc()
}

func (m *ClientMetrics) reuse() {
	if m == nil {
		return
	}
	m.reuses.Inc()
}

func (m *ClientMetrics) retry() {
	if m == nil {
		return
	}
	m.retries.Inc()
}

func (m *ClientMetrics) failedFast() {
	if m == nil {
		return
	}
	m.failFast.Inc()
}

func (m *ClientMetrics) shed() {
	if m == nil {
		return
	}
	m.sheds.Inc()
}

// attemptStatusLabel classifies one attempt's outcome into a bounded
// label set: "ok", the remote status slug, or a local error class.
func attemptStatusLabel(err error) string {
	if err == nil {
		return "ok"
	}
	var remote *RemoteError
	switch {
	case errors.As(err, &remote):
		return statusSlug(remote.Status)
	case errors.Is(err, ErrCircuitOpen):
		return "circuit_open"
	case errors.Is(err, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(err, context.Canceled):
		return "cancelled"
	default:
		return "conn_error"
	}
}

// statusSlug renders a Status as a metric label ("application error" ->
// "application_error").
func statusSlug(s Status) string {
	return strings.ReplaceAll(s.String(), " ", "_")
}

// ServerMetrics binds the server-side metric families of a registry. A
// nil *ServerMetrics records nothing.
type ServerMetrics struct {
	latency   *obs.HistogramVec // cosm_server_request_seconds{op}
	status    *obs.CounterVec   // cosm_server_responses_total{status}
	queueWait *obs.Histogram
	sheds     *obs.Counter
	expired   *obs.Counter
	panics    *obs.Counter
	slow      *obs.Counter
	inflight  *obs.Gauge
}

// NewServerMetrics creates (or interns) the cosm_server_* families in
// reg. Returns nil on a nil registry.
func NewServerMetrics(reg *obs.Registry) *ServerMetrics {
	if reg == nil {
		return nil
	}
	return &ServerMetrics{
		latency:   reg.HistogramVec("cosm_server_request_seconds", "Handler latency by service/op.", "op", nil),
		status:    reg.CounterVec("cosm_server_responses_total", "Responses sent by status.", "status"),
		queueWait: reg.Histogram("cosm_server_queue_wait_seconds", "Admission queue wait before a handler slot freed.", nil),
		sheds:     reg.Counter("cosm_server_sheds_total", "Requests shed with StatusOverloaded."),
		expired:   reg.Counter("cosm_server_deadline_expired_total", "Requests rejected with an already-expired deadline."),
		panics:    reg.Counter("cosm_server_panics_total", "Handler panics converted into StatusAppError."),
		slow:      reg.Counter("cosm_server_slow_requests_total", "Requests exceeding the slow-request watchdog threshold."),
		inflight:  reg.Gauge("cosm_server_inflight_requests", "Requests dispatched and not yet responded to."),
	}
}

// observeHandled records one handled request's latency.
func (m *ServerMetrics) observeHandled(op string, d time.Duration) {
	if m == nil {
		return
	}
	m.latency.With(op).Observe(d.Seconds())
}

// observeResponse counts one outgoing response by status.
func (m *ServerMetrics) observeResponse(s Status) {
	if m == nil {
		return
	}
	m.status.With(statusSlug(s)).Inc()
}

// observeQueueWait records one admission-queue wait.
func (m *ServerMetrics) observeQueueWait(d time.Duration) {
	if m == nil {
		return
	}
	m.queueWait.Observe(d.Seconds())
}

func (m *ServerMetrics) shedOne() {
	if m == nil {
		return
	}
	m.sheds.Inc()
}

func (m *ServerMetrics) expireOne() {
	if m == nil {
		return
	}
	m.expired.Inc()
}

func (m *ServerMetrics) panicOne() {
	if m == nil {
		return
	}
	m.panics.Inc()
}

func (m *ServerMetrics) slowOne() {
	if m == nil {
		return
	}
	m.slow.Inc()
}

func (m *ServerMetrics) inflightAdd(delta int64) {
	if m == nil {
		return
	}
	m.inflight.Add(delta)
}
