package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"
)

// Frame layout: a fixed header followed by the payload.
//
//	0      2      3       4            12           16
//	+------+------+-------+------------+------------+----------+
//	| "CW" | ver  | ftype | id (be64)  | len (be32) | payload  |
//	+------+------+-------+------------+------------+----------+
//
// id correlates responses with requests over one multiplexed connection.
//
// Version 2 extends version 1 compatibly:
//
//   - request frames carry an 8-byte big-endian TTL (microseconds of
//     caller budget remaining at send time; 0 = unbounded) between the
//     fixed header and the payload, propagating the caller's deadline
//     to the server. A TTL is relative, not absolute, so it survives
//     clock skew between nodes;
//   - after the TTL, request frames carry a trace-metadata section: one
//     length byte, then (when non-zero) the request's trace ID and the
//     caller's span ID, each length-prefixed. A zero length byte is the
//     entire section for untraced requests, so readers tolerate the
//     absence of trace IDs and v1 peers — which have no extension at
//     all — are unaffected;
//   - a new cancel frame type (no payload) tells the server the caller
//     of the identified request has given up, so server-side work can
//     be cancelled;
//   - response payloads carry a retry-after hint (see
//     encodeResponse).
//
// Readers accept both versions: a v1 request is simply one without a
// deadline or trace, which is exactly the pre-v2 semantics.
const (
	frameHeaderLen = 16
	frameTTLLen    = 8
	protoVersion   = 2
	minProtoVer    = 1

	// frameMaxMeta bounds the trace-metadata section (it is
	// length-prefixed by a single byte anyway); each ID within is
	// length-prefixed by one byte too, capping it at 255 bytes.
	frameMaxMeta = 255

	frameRequest  = 1
	frameResponse = 2
	// frameCancel (v2+) carries no payload; its id names the request
	// whose server-side work should be cancelled.
	frameCancel = 3
)

// MaxFramePayload bounds a frame payload; larger frames are rejected on
// both send and receive.
const MaxFramePayload = 16 << 20

// Framing errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFramePayload")
	ErrBadFrame      = errors.New("wire: malformed frame")
)

var frameMagic = [2]byte{'C', 'W'}

type frame struct {
	version byte
	ftype   byte
	id      uint64
	// ttl is the caller's remaining budget for request frames
	// (microseconds; 0 means no deadline). Only meaningful when
	// ftype == frameRequest and version >= 2.
	ttl uint64
	// traceID and parentID are the request's trace metadata (v2
	// requests only; both empty for untraced requests and v1 frames).
	// traceID identifies the whole logical request across every hop;
	// parentID is the calling side's span.
	traceID  string
	parentID string
	payload  []byte
}

// encodeFrameMeta renders the trace-metadata section: a single length
// byte, then — when there is anything to carry — the two IDs, each
// length-prefixed by one byte. Oversized IDs are dropped rather than
// corrupting the frame: tracing is best-effort metadata.
func encodeFrameMeta(traceID, parentID string) []byte {
	if len(traceID) > frameMaxMeta/2-1 || len(parentID) > frameMaxMeta/2-1 {
		traceID, parentID = "", ""
	}
	if traceID == "" && parentID == "" {
		return []byte{0}
	}
	meta := make([]byte, 0, 3+len(traceID)+len(parentID))
	meta = append(meta, 0) // section length, patched below
	meta = append(meta, byte(len(traceID)))
	meta = append(meta, traceID...)
	meta = append(meta, byte(len(parentID)))
	meta = append(meta, parentID...)
	meta[0] = byte(len(meta) - 1)
	return meta
}

// decodeFrameMeta parses the body of a trace-metadata section (the
// bytes after the section length byte).
func decodeFrameMeta(meta []byte) (traceID, parentID string, err error) {
	rest := meta
	take := func() (string, error) {
		if len(rest) == 0 {
			return "", fmt.Errorf("%w: truncated trace metadata", ErrBadFrame)
		}
		n := int(rest[0])
		rest = rest[1:]
		if len(rest) < n {
			return "", fmt.Errorf("%w: truncated trace metadata", ErrBadFrame)
		}
		s := string(rest[:n])
		rest = rest[n:]
		return s, nil
	}
	if traceID, err = take(); err != nil {
		return "", "", err
	}
	if parentID, err = take(); err != nil {
		return "", "", err
	}
	// Trailing bytes are tolerated: a future version may append more
	// metadata, and old readers should keep working.
	return traceID, parentID, nil
}

func writeFrame(w io.Writer, f frame) error {
	if len(f.payload) > MaxFramePayload {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(f.payload))
	}
	version := f.version
	if version == 0 {
		version = protoVersion
	}
	var ext []byte
	if f.ftype == frameRequest && version >= 2 {
		var ttl [frameTTLLen]byte
		binary.BigEndian.PutUint64(ttl[:], f.ttl)
		ext = append(ttl[:], encodeFrameMeta(f.traceID, f.parentID)...)
	}
	hdr := make([]byte, frameHeaderLen, frameHeaderLen+len(ext)+len(f.payload))
	hdr[0], hdr[1] = frameMagic[0], frameMagic[1]
	hdr[2] = version
	hdr[3] = f.ftype
	binary.BigEndian.PutUint64(hdr[4:], f.id)
	binary.BigEndian.PutUint32(hdr[12:], uint32(len(f.payload)))
	// One Write call per frame keeps frames atomic with respect to the
	// connection-level write mutex held by the caller.
	buf := append(hdr, ext...)
	buf = append(buf, f.payload...)
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader) (frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	if hdr[0] != frameMagic[0] || hdr[1] != frameMagic[1] {
		return frame{}, fmt.Errorf("%w: bad magic %x", ErrBadFrame, hdr[:2])
	}
	version := hdr[2]
	if version < minProtoVer || version > protoVersion {
		return frame{}, fmt.Errorf("%w: version %d", ErrBadFrame, version)
	}
	ftype := hdr[3]
	switch ftype {
	case frameRequest, frameResponse:
	case frameCancel:
		if version < 2 {
			return frame{}, fmt.Errorf("%w: cancel frame in version %d", ErrBadFrame, version)
		}
	default:
		return frame{}, fmt.Errorf("%w: frame type %d", ErrBadFrame, ftype)
	}
	f := frame{version: version, ftype: ftype, id: binary.BigEndian.Uint64(hdr[4:])}
	if ftype == frameRequest && version >= 2 {
		var ttl [frameTTLLen]byte
		if _, err := io.ReadFull(r, ttl[:]); err != nil {
			return frame{}, fmt.Errorf("%w: truncated deadline: %v", ErrBadFrame, err)
		}
		f.ttl = binary.BigEndian.Uint64(ttl[:])
		var metaLen [1]byte
		if _, err := io.ReadFull(r, metaLen[:]); err != nil {
			return frame{}, fmt.Errorf("%w: truncated trace metadata: %v", ErrBadFrame, err)
		}
		if n := int(metaLen[0]); n > 0 {
			meta := make([]byte, n)
			if _, err := io.ReadFull(r, meta); err != nil {
				return frame{}, fmt.Errorf("%w: truncated trace metadata: %v", ErrBadFrame, err)
			}
			traceID, parentID, err := decodeFrameMeta(meta)
			if err != nil {
				return frame{}, err
			}
			f.traceID, f.parentID = traceID, parentID
		}
	}
	n := binary.BigEndian.Uint32(hdr[12:])
	if n > MaxFramePayload {
		return frame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return frame{}, fmt.Errorf("%w: truncated payload: %v", ErrBadFrame, err)
	}
	f.payload = payload
	return f, nil
}

// ttlOf converts a context deadline into the frame TTL field: the
// remaining budget in microseconds, at least 1 so a propagated deadline
// is never mistaken for "no deadline".
func ttlOf(deadline time.Time, now time.Time) uint64 {
	rem := deadline.Sub(now)
	if rem <= 0 {
		return 1
	}
	us := uint64(rem / time.Microsecond)
	if us == 0 {
		us = 1
	}
	return us
}

// Request is one RPC request: a service name, an operation name, and an
// opaque body (encoded by the layer above, typically xcode).
type Request struct {
	Service string
	Op      string
	Body    []byte
}

// Status is the outcome class of a response.
type Status uint8

// Response statuses.
const (
	// StatusOK: the operation executed; Body holds the encoded result.
	StatusOK Status = iota + 1
	// StatusAppError: the service's handler returned an error; ErrMsg
	// carries its text.
	StatusAppError
	// StatusNoService: the node hosts no service with the given name.
	StatusNoService
	// StatusNoOp: the service hosts no such operation.
	StatusNoOp
	// StatusProtocol: the invocation violated the service's FSM protocol.
	StatusProtocol
	// StatusBadRequest: the request body could not be decoded.
	StatusBadRequest
	// StatusOverloaded (v2): the server shed the request before
	// dispatching it — admission limits were exceeded or the server is
	// draining. The handler did not run, so retrying is always safe;
	// RetryAfter carries the server's backoff hint.
	StatusOverloaded
	// StatusDeadlineExpired (v2): the request's propagated deadline had
	// already expired before dispatch, so the server refused to burn
	// cycles on work whose caller has given up. The handler did not run.
	StatusDeadlineExpired
)

// String returns a short name for the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusAppError:
		return "application error"
	case StatusNoService:
		return "no such service"
	case StatusNoOp:
		return "no such operation"
	case StatusProtocol:
		return "protocol violation"
	case StatusBadRequest:
		return "bad request"
	case StatusOverloaded:
		return "overloaded"
	case StatusDeadlineExpired:
		return "deadline expired"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Response is the reply to one Request.
type Response struct {
	Status Status
	ErrMsg string
	Body   []byte
	// RetryAfter is the server's backoff hint on StatusOverloaded:
	// roughly how long the caller should wait before retrying. Zero
	// means no hint.
	RetryAfter time.Duration
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func consumeString(data []byte, limit int) (string, []byte, error) {
	n, size := binary.Uvarint(data)
	if size <= 0 {
		return "", nil, fmt.Errorf("%w: truncated string length", ErrBadFrame)
	}
	data = data[size:]
	if n > uint64(limit) || uint64(len(data)) < n {
		return "", nil, fmt.Errorf("%w: string length %d", ErrBadFrame, n)
	}
	return string(data[:n]), data[n:], nil
}

const maxNameLen = 4096

func encodeRequest(r *Request) []byte {
	buf := make([]byte, 0, len(r.Service)+len(r.Op)+len(r.Body)+16)
	buf = appendString(buf, r.Service)
	buf = appendString(buf, r.Op)
	return append(buf, r.Body...)
}

func decodeRequest(payload []byte) (*Request, error) {
	service, rest, err := consumeString(payload, maxNameLen)
	if err != nil {
		return nil, err
	}
	op, rest, err := consumeString(rest, maxNameLen)
	if err != nil {
		return nil, err
	}
	return &Request{Service: service, Op: op, Body: rest}, nil
}

// Response payload layouts:
//
//	v1: status, errmsg, body
//	v2: status, retry-after (uvarint ms), errmsg, body
//
// The version of the enclosing frame selects the layout, so a v2 node
// still decodes responses from a v1 peer.

func encodeResponse(r *Response) []byte {
	buf := make([]byte, 0, len(r.ErrMsg)+len(r.Body)+24)
	buf = append(buf, byte(r.Status))
	buf = binary.AppendUvarint(buf, uint64(r.RetryAfter/time.Millisecond))
	buf = appendString(buf, r.ErrMsg)
	return append(buf, r.Body...)
}

func decodeResponse(version byte, payload []byte) (*Response, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("%w: empty response", ErrBadFrame)
	}
	status := Status(payload[0])
	if status < StatusOK || status > StatusDeadlineExpired {
		return nil, fmt.Errorf("%w: status %d", ErrBadFrame, payload[0])
	}
	rest := payload[1:]
	var retryAfter time.Duration
	if version >= 2 {
		ms, size := binary.Uvarint(rest)
		if size <= 0 {
			return nil, fmt.Errorf("%w: truncated retry-after", ErrBadFrame)
		}
		rest = rest[size:]
		retryAfter = time.Duration(ms) * time.Millisecond
	}
	msg, rest, err := consumeString(rest, MaxFramePayload)
	if err != nil {
		return nil, err
	}
	return &Response{Status: status, ErrMsg: msg, Body: rest, RetryAfter: retryAfter}, nil
}
