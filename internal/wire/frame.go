package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Frame layout: a fixed header followed by the payload.
//
//	0      2      3       4            12           16
//	+------+------+-------+------------+------------+----------+
//	| "CW" | ver  | ftype | id (be64)  | len (be32) | payload  |
//	+------+------+-------+------------+------------+----------+
//
// id correlates responses with requests over one multiplexed connection.
const (
	frameHeaderLen = 16
	protoVersion   = 1

	frameRequest  = 1
	frameResponse = 2
)

// MaxFramePayload bounds a frame payload; larger frames are rejected on
// both send and receive.
const MaxFramePayload = 16 << 20

// Framing errors.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds MaxFramePayload")
	ErrBadFrame      = errors.New("wire: malformed frame")
)

var frameMagic = [2]byte{'C', 'W'}

type frame struct {
	ftype   byte
	id      uint64
	payload []byte
}

func writeFrame(w io.Writer, f frame) error {
	if len(f.payload) > MaxFramePayload {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(f.payload))
	}
	hdr := make([]byte, frameHeaderLen, frameHeaderLen+len(f.payload))
	hdr[0], hdr[1] = frameMagic[0], frameMagic[1]
	hdr[2] = protoVersion
	hdr[3] = f.ftype
	binary.BigEndian.PutUint64(hdr[4:], f.id)
	binary.BigEndian.PutUint32(hdr[12:], uint32(len(f.payload)))
	// One Write call per frame keeps frames atomic with respect to the
	// connection-level write mutex held by the caller.
	buf := append(hdr, f.payload...)
	_, err := w.Write(buf)
	return err
}

func readFrame(r io.Reader) (frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	if hdr[0] != frameMagic[0] || hdr[1] != frameMagic[1] {
		return frame{}, fmt.Errorf("%w: bad magic %x", ErrBadFrame, hdr[:2])
	}
	if hdr[2] != protoVersion {
		return frame{}, fmt.Errorf("%w: version %d", ErrBadFrame, hdr[2])
	}
	ftype := hdr[3]
	if ftype != frameRequest && ftype != frameResponse {
		return frame{}, fmt.Errorf("%w: frame type %d", ErrBadFrame, ftype)
	}
	n := binary.BigEndian.Uint32(hdr[12:])
	if n > MaxFramePayload {
		return frame{}, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return frame{}, fmt.Errorf("%w: truncated payload: %v", ErrBadFrame, err)
	}
	return frame{ftype: ftype, id: binary.BigEndian.Uint64(hdr[4:]), payload: payload}, nil
}

// Request is one RPC request: a service name, an operation name, and an
// opaque body (encoded by the layer above, typically xcode).
type Request struct {
	Service string
	Op      string
	Body    []byte
}

// Status is the outcome class of a response.
type Status uint8

// Response statuses.
const (
	// StatusOK: the operation executed; Body holds the encoded result.
	StatusOK Status = iota + 1
	// StatusAppError: the service's handler returned an error; ErrMsg
	// carries its text.
	StatusAppError
	// StatusNoService: the node hosts no service with the given name.
	StatusNoService
	// StatusNoOp: the service hosts no such operation.
	StatusNoOp
	// StatusProtocol: the invocation violated the service's FSM protocol.
	StatusProtocol
	// StatusBadRequest: the request body could not be decoded.
	StatusBadRequest
)

// String returns a short name for the status.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusAppError:
		return "application error"
	case StatusNoService:
		return "no such service"
	case StatusNoOp:
		return "no such operation"
	case StatusProtocol:
		return "protocol violation"
	case StatusBadRequest:
		return "bad request"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// Response is the reply to one Request.
type Response struct {
	Status Status
	ErrMsg string
	Body   []byte
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func consumeString(data []byte, limit int) (string, []byte, error) {
	n, size := binary.Uvarint(data)
	if size <= 0 {
		return "", nil, fmt.Errorf("%w: truncated string length", ErrBadFrame)
	}
	data = data[size:]
	if n > uint64(limit) || uint64(len(data)) < n {
		return "", nil, fmt.Errorf("%w: string length %d", ErrBadFrame, n)
	}
	return string(data[:n]), data[n:], nil
}

const maxNameLen = 4096

func encodeRequest(r *Request) []byte {
	buf := make([]byte, 0, len(r.Service)+len(r.Op)+len(r.Body)+16)
	buf = appendString(buf, r.Service)
	buf = appendString(buf, r.Op)
	return append(buf, r.Body...)
}

func decodeRequest(payload []byte) (*Request, error) {
	service, rest, err := consumeString(payload, maxNameLen)
	if err != nil {
		return nil, err
	}
	op, rest, err := consumeString(rest, maxNameLen)
	if err != nil {
		return nil, err
	}
	return &Request{Service: service, Op: op, Body: rest}, nil
}

func encodeResponse(r *Response) []byte {
	buf := make([]byte, 0, len(r.ErrMsg)+len(r.Body)+16)
	buf = append(buf, byte(r.Status))
	buf = appendString(buf, r.ErrMsg)
	return append(buf, r.Body...)
}

func decodeResponse(payload []byte) (*Response, error) {
	if len(payload) < 1 {
		return nil, fmt.Errorf("%w: empty response", ErrBadFrame)
	}
	status := Status(payload[0])
	if status < StatusOK || status > StatusBadRequest {
		return nil, fmt.Errorf("%w: status %d", ErrBadFrame, payload[0])
	}
	msg, rest, err := consumeString(payload[1:], MaxFramePayload)
	if err != nil {
		return nil, err
	}
	return &Response{Status: status, ErrMsg: msg, Body: rest}, nil
}
