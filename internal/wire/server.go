package wire

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"cosm/internal/obs"
)

// Handler executes one operation of one service. Implementations are
// invoked concurrently. ctx carries the caller's propagated deadline
// (if the request frame had one) and is cancelled when the caller
// abandons the call, the connection breaks, or the server shuts down;
// long-running handlers should honour it. The returned response's Body
// is opaque to the wire layer. A Handler must not retain req.Body past
// its return.
type Handler interface {
	ServeCOSM(ctx context.Context, remote string, req *Request) *Response
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(ctx context.Context, remote string, req *Request) *Response

// ServeCOSM calls f.
func (f HandlerFunc) ServeCOSM(ctx context.Context, remote string, req *Request) *Response {
	return f(ctx, remote, req)
}

// Server registration errors.
var (
	ErrServiceExists = errors.New("wire: service already registered")
	ErrServerClosed  = errors.New("wire: server closed")
)

// AdmissionPolicy bounds the work a Server accepts — the overload
// protection of the market's hotspots (trader, browser). A server
// beyond its limits sheds requests with StatusOverloaded instead of
// accumulating unbounded goroutines, so admitted requests keep bounded
// latency while excess load fails fast and backs off client-side.
type AdmissionPolicy struct {
	// MaxInFlight caps concurrently executing handlers across the whole
	// server; 0 means unlimited (no admission control at all).
	MaxInFlight int
	// MaxPerConn caps dispatched-but-unfinished requests per connection
	// (queued included), so one greedy client cannot monopolise the
	// server-wide budget; 0 means unlimited.
	MaxPerConn int
	// MaxQueue caps requests waiting for an in-flight slot (FIFO);
	// beyond it requests are shed immediately. 0 means no queue: a
	// saturated server sheds at once.
	MaxQueue int
	// QueueWait caps how long one request may wait for admission; a
	// request that queues longer is shed. 0 applies a default of 100ms
	// when queueing is enabled.
	QueueWait time.Duration
	// RetryAfter is the backoff hint attached to shed responses; 0
	// derives it from QueueWait.
	RetryAfter time.Duration
}

const defaultQueueWait = 100 * time.Millisecond

func (p AdmissionPolicy) queueWait() time.Duration {
	if p.QueueWait > 0 {
		return p.QueueWait
	}
	return defaultQueueWait
}

func (p AdmissionPolicy) retryAfter() time.Duration {
	if p.RetryAfter > 0 {
		return p.RetryAfter
	}
	return p.queueWait()
}

// ServerStats counts overload-protection events across a Server's
// lifetime (monotonic, goroutine-safe).
type ServerStats struct {
	// Served counts requests whose handler ran to completion.
	Served uint64
	// Shed counts requests rejected with StatusOverloaded.
	Shed uint64
	// Expired counts requests rejected with StatusDeadlineExpired
	// before their handler ran.
	Expired uint64
	// Panics counts handler panics converted into StatusAppError.
	Panics uint64
}

// Server hosts named services behind one listener. One server instance
// corresponds to one COSM "node": the trader, browser, name server and
// application services of the prototype are all Handlers registered at a
// Server. The zero value is not usable; call NewServer.
type Server struct {
	logf      func(format string, args ...any)
	log       *obs.Logger
	metrics   *ServerMetrics
	rec       *obs.SpanRecorder
	slow      time.Duration // slow-request watchdog threshold (0 = off)
	slowLast  atomic.Int64  // UnixNano of the last watchdog log line (sampling)
	admission AdmissionPolicy

	// sem holds one token per executing handler when MaxInFlight > 0.
	sem    chan struct{}
	queued atomic.Int64

	served  atomic.Uint64
	shed    atomic.Uint64
	expired atomic.Uint64
	panics  atomic.Uint64

	// baseCtx parents every request context; baseCancel fires on Close
	// so abandoned handlers observe the shutdown.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu       sync.Mutex
	services map[string]Handler
	ln       Listener
	conns    map[net.Conn]bool
	closed   bool
	draining bool

	// drainHooks run once during Shutdown, after in-flight requests
	// have drained and before connections close — the point where
	// durable state written during the drain can be flushed and synced.
	drainHooks []func()
	drainOnce  sync.Once

	wg sync.WaitGroup
	// inflight tracks dispatched requests (queued or executing);
	// Shutdown waits for it before tearing connections down.
	inflight sync.WaitGroup
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithServerLog directs server diagnostics to logf (default: log.Printf
// for connection-level errors only).
func WithServerLog(logf func(format string, args ...any)) ServerOption {
	return func(s *Server) { s.logf = logf }
}

// WithAdmission bounds the server's concurrent work (see
// AdmissionPolicy). Without this option the server admits everything,
// preserving the pre-overload-protection behaviour.
func WithAdmission(p AdmissionPolicy) ServerOption {
	return func(s *Server) { s.admission = p }
}

// WithServerLogger routes the server's diagnostics through the
// structured logger l and enables the per-request access log: every
// handled request emits one event=rpc line carrying the request's
// trace ID, op, status and duration — the line that lets an operator
// grep one trace across every daemon it touched. Panic stacks go
// through l too. A nil l is a no-op.
func WithServerLogger(l *obs.Logger) ServerOption {
	return func(s *Server) {
		if l == nil {
			return
		}
		s.log = l
		s.logf = l.Sink()
	}
}

// WithServerMetrics records request latency by op, responses by
// status, admission queue waits, sheds, expiries and panics into m
// (see NewServerMetrics). A nil m disables recording.
func WithServerMetrics(m *ServerMetrics) ServerOption {
	return func(s *Server) { s.metrics = m }
}

// WithServerRecorder attaches the flight recorder: every traced request
// records one server-kind span (op, remote, status, duration, parented
// at the caller's span) into r. Untraced requests — v1 peers without
// trace metadata — record nothing. A nil r costs nothing.
func WithServerRecorder(r *obs.SpanRecorder) ServerOption {
	return func(s *Server) { s.rec = r }
}

// WithSlowThreshold arms the slow-request watchdog: a handled request
// whose duration reaches d is counted and — sampled to at most one line
// per second — promoted into a structured "slow_request" log line
// carrying its trace ID, so an operator can jump from the symptom
// straight to `cosmcli trace`. 0 disables the watchdog.
func WithSlowThreshold(d time.Duration) ServerOption {
	return func(s *Server) { s.slow = d }
}

// NewServer returns an empty server.
func NewServer(opts ...ServerOption) *Server {
	s := &Server{
		services: map[string]Handler{},
		conns:    map[net.Conn]bool{},
		logf:     func(format string, args ...any) { log.Printf(format, args...) },
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	for _, o := range opts {
		o(s)
	}
	if s.admission.MaxInFlight > 0 {
		s.sem = make(chan struct{}, s.admission.MaxInFlight)
	}
	return s
}

// Stats returns a snapshot of the server's overload counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Served:  s.served.Load(),
		Shed:    s.shed.Load(),
		Expired: s.expired.Load(),
		Panics:  s.panics.Load(),
	}
}

// Register adds a named service. Registering a duplicate name is an
// error: service identity must be stable for the node's lifetime.
func (s *Server) Register(name string, h Handler) error {
	if name == "" || h == nil {
		return fmt.Errorf("wire: Register(%q) with empty name or nil handler", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.services[name]; dup {
		return fmt.Errorf("%w: %q", ErrServiceExists, name)
	}
	s.services[name] = h
	return nil
}

// Unregister removes a named service; unknown names are a no-op.
func (s *Server) Unregister(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.services, name)
}

// ServiceNames returns the registered service names (unordered).
func (s *Server) ServiceNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.services))
	for n := range s.services {
		names = append(names, n)
	}
	return names
}

// Serve starts accepting connections on ln and returns immediately. The
// listener is owned by the server from here on: Close closes it.
func (s *Server) Serve(ln Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	if s.ln != nil {
		s.mu.Unlock()
		return errors.New("wire: server already serving")
	}
	s.ln = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// ListenAndServe creates a listener for endpoint and serves on it,
// returning the bound endpoint (useful with ephemeral TCP ports).
func (s *Server) ListenAndServe(endpoint string) (string, error) {
	ln, err := Listen(endpoint)
	if err != nil {
		return "", err
	}
	if err := s.Serve(ln); err != nil {
		_ = ln.Close()
		return "", err
	}
	return ln.Endpoint(), nil
}

// Endpoint returns the serving endpoint ("" before Serve).
func (s *Server) Endpoint() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Endpoint()
}

func (s *Server) acceptLoop(ln Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Closed listener: quiet shutdown. Anything else is logged.
			if !errors.Is(err, net.ErrClosed) {
				s.logf("wire: accept: %v", err)
			}
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()

		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

// connState is the per-connection request bookkeeping shared between the
// read loop and the per-request goroutines.
type connState struct {
	conn    net.Conn
	writeMu sync.Mutex // serializes frame writes

	// dispatched counts queued or executing requests on this connection
	// (the MaxPerConn budget).
	dispatched atomic.Int64

	mu      sync.Mutex
	cancels map[uint64]context.CancelFunc
}

// register records the cancel func of an in-flight request so a cancel
// frame for its id can reach it.
func (cs *connState) register(id uint64, cancel context.CancelFunc) {
	cs.mu.Lock()
	cs.cancels[id] = cancel
	cs.mu.Unlock()
}

func (cs *connState) unregister(id uint64) {
	cs.mu.Lock()
	delete(cs.cancels, id)
	cs.mu.Unlock()
}

// cancel fires the cancel func registered for id, if any.
func (cs *connState) cancel(id uint64) {
	cs.mu.Lock()
	c := cs.cancels[id]
	cs.mu.Unlock()
	if c != nil {
		c()
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	remote := conn.RemoteAddr().String()
	cs := &connState{conn: conn, cancels: map[uint64]context.CancelFunc{}}
	// connCtx parents every request on this connection: a broken or
	// closed connection cancels all of its in-flight handlers.
	connCtx, connCancel := context.WithCancel(s.baseCtx)
	defer connCancel()
	var handlers sync.WaitGroup
	defer handlers.Wait()

	for {
		f, err := readFrame(conn)
		if err != nil {
			// EOF and closed-connection errors are normal client
			// departures; framing errors are worth a log line.
			if errors.Is(err, ErrBadFrame) || errors.Is(err, ErrFrameTooLarge) {
				s.logf("wire: %s: %v", remote, err)
			}
			return
		}
		switch f.ftype {
		case frameCancel:
			cs.cancel(f.id)
			continue
		case frameRequest:
		default:
			s.logf("wire: %s: unexpected frame type %d", remote, f.ftype)
			return
		}
		req, err := decodeRequest(f.payload)
		if err != nil {
			s.respond(cs, f.id, &Response{Status: StatusBadRequest, ErrMsg: err.Error()})
			continue
		}
		s.mu.Lock()
		h, ok := s.services[req.Service]
		draining := s.draining
		s.mu.Unlock()
		if !ok {
			s.respond(cs, f.id, &Response{Status: StatusNoService, ErrMsg: req.Service})
			continue
		}
		s.dispatch(connCtx, cs, &handlers, f, req, h, remote, draining)
	}
}

// dispatch applies deadline, drain and admission checks to one request
// and, when admitted, runs its handler in its own goroutine so one slow
// operation does not block the connection (the multiplexing that Sun
// RPC over TCP lacks, but DCE-style RPC provides). Shed and reject
// paths respond inline from the read loop: they do not spawn, so the
// goroutine population is bounded by MaxInFlight + MaxQueue.
func (s *Server) dispatch(connCtx context.Context, cs *connState, handlers *sync.WaitGroup, f frame, req *Request, h Handler, remote string, draining bool) {
	// Deadline propagation: the request context inherits the caller's
	// remaining budget, and is independently cancellable so a cancel
	// frame for this id can abort just this request. An already-expired
	// request is rejected before any queueing or handler work.
	var ctx context.Context
	var cancel context.CancelFunc
	if f.ttl > 0 {
		ctx, cancel = context.WithTimeout(connCtx, time.Duration(f.ttl)*time.Microsecond)
	} else {
		ctx, cancel = context.WithCancel(connCtx)
	}
	// Trace continuation: the handler context carries the caller's trace
	// ID under a fresh span parented at the caller's span, so every log
	// line this request produces — here and on further hops — shares one
	// trace ID.
	if f.traceID != "" {
		ctx = obs.WithTrace(ctx, obs.Trace{ID: f.traceID, Span: f.parentID}.Child())
	}
	// Error responses echo the trace ID so a caller holding only the
	// error text can still find the server-side footprint.
	echo := traceEcho(f.traceID)
	if ctx.Err() != nil || f.ttl == 1 {
		// A 1µs TTL is the stamp of a caller at (or past) its deadline.
		cancel()
		s.expired.Add(1)
		s.metrics.expireOne()
		s.respond(cs, f.id, &Response{Status: StatusDeadlineExpired, ErrMsg: req.Service + "/" + req.Op + echo})
		return
	}
	if draining {
		cancel()
		s.shedResponse(cs, f.id, "server draining"+echo)
		return
	}
	p := s.admission
	if p.MaxPerConn > 0 && cs.dispatched.Load() >= int64(p.MaxPerConn) {
		cancel()
		s.shedResponse(cs, f.id, "per-connection limit"+echo)
		return
	}

	queueing := false
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}: // free slot: admit immediately
		default:
			if int(s.queued.Load()) >= p.MaxQueue {
				cancel()
				s.shedResponse(cs, f.id, "admission queue full"+echo)
				return
			}
			s.queued.Add(1)
			queueing = true
		}
	}

	cs.dispatched.Add(1)
	s.inflight.Add(1)
	s.metrics.inflightAdd(1)
	handlers.Add(1)
	cs.register(f.id, cancel)
	go func(id uint64, req *Request, ctx context.Context) {
		defer handlers.Done()
		defer s.inflight.Done()
		defer s.metrics.inflightAdd(-1)
		defer cs.dispatched.Add(-1)
		defer cs.unregister(id)
		defer cancel()

		if queueing {
			// FIFO admission wait, bounded by the queue-time cap and
			// the request's own deadline: work nobody is waiting for
			// anymore must not occupy a slot.
			waitStart := time.Now()
			wait := time.NewTimer(p.queueWait())
			select {
			case s.sem <- struct{}{}:
				wait.Stop()
				s.metrics.observeQueueWait(time.Since(waitStart))
			case <-wait.C:
				s.queued.Add(-1)
				s.shedResponse(cs, id, "queue wait exceeded"+echo)
				return
			case <-ctx.Done():
				wait.Stop()
				s.queued.Add(-1)
				s.expired.Add(1)
				s.metrics.expireOne()
				s.respond(cs, id, &Response{Status: StatusDeadlineExpired, ErrMsg: req.Service + "/" + req.Op + echo})
				return
			}
			s.queued.Add(-1)
		}
		if s.sem != nil {
			defer func() { <-s.sem }()
		}
		// Re-check after queueing: the deadline may have expired while
		// waiting for a slot.
		if ctx.Err() != nil {
			s.expired.Add(1)
			s.metrics.expireOne()
			s.respond(cs, id, &Response{Status: StatusDeadlineExpired, ErrMsg: req.Service + "/" + req.Op + echo})
			return
		}
		s.respond(cs, id, s.serveRequest(ctx, h, remote, req))
	}(f.id, req, ctx)
}

// traceEcho renders the error-response trace suffix for a traced
// request ("" for untraced ones).
func traceEcho(traceID string) string {
	if traceID == "" {
		return ""
	}
	return " [trace " + traceID + "]"
}

// serveRequest runs one handler, converting a panic into a
// StatusAppError response instead of letting it kill the daemon: in an
// open market a single misbehaving service implementation must not take
// the whole node — and every co-hosted service — down with it.
func (s *Server) serveRequest(ctx context.Context, h Handler, remote string, req *Request) (resp *Response) {
	op := req.Service + "/" + req.Op
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			s.panics.Add(1)
			s.metrics.panicOne()
			// The stack goes through the structured logger when one is
			// configured, so the panic line carries the request's trace
			// ID; otherwise through the plain logf fallback.
			if s.log != nil {
				s.log.Log(ctx, "panic", "op", op, "remote", remote,
					"panic", fmt.Sprintf("%v", r), "stack", string(debug.Stack()))
			} else {
				s.logf("wire: panic in %s handler: %v\n%s", op, r, debug.Stack())
			}
			resp = &Response{Status: StatusAppError, ErrMsg: fmt.Sprintf("handler panic: %v", r)}
		}
		d := time.Since(start)
		s.metrics.observeHandled(op, d)
		// Access log: one line per handled request, tagged with the
		// trace carried by ctx.
		if s.log != nil {
			s.log.Log(ctx, "rpc", "op", op, "remote", remote,
				"status", resp.Status.String(), "dur", d)
		}
		if tr := obs.TraceFrom(ctx); s.rec.Enabled() && tr.Valid() {
			s.rec.Record(obs.Span{
				Trace:    tr.ID,
				ID:       tr.Span,
				Parent:   tr.Parent,
				Op:       op,
				Peer:     remote,
				Kind:     obs.SpanServer,
				Status:   statusSlug(resp.Status),
				Start:    start,
				Duration: d,
			})
		}
		if s.slow > 0 && d >= s.slow {
			s.metrics.slowOne()
			// Sampled promotion: at most one watchdog line per second, so
			// a systemic slowdown surfaces without flooding the log.
			now := time.Now().UnixNano()
			if last := s.slowLast.Load(); now-last >= int64(time.Second) &&
				s.slowLast.CompareAndSwap(last, now) && s.log != nil {
				s.log.Log(ctx, "slow_request", "op", op, "remote", remote,
					"status", resp.Status.String(), "dur", d, "threshold", s.slow)
			}
		}
	}()
	resp = h.ServeCOSM(ctx, remote, req)
	if resp == nil {
		resp = &Response{Status: StatusAppError, ErrMsg: "nil response from handler"}
	}
	s.served.Add(1)
	return resp
}

// shedResponse rejects one request with StatusOverloaded and the
// configured retry-after hint.
func (s *Server) shedResponse(cs *connState, id uint64, why string) {
	s.shed.Add(1)
	s.metrics.shedOne()
	s.respond(cs, id, &Response{
		Status:     StatusOverloaded,
		ErrMsg:     why,
		RetryAfter: s.admission.retryAfter(),
	})
}

func (s *Server) respond(cs *connState, id uint64, resp *Response) {
	s.metrics.observeResponse(resp.Status)
	cs.writeMu.Lock()
	defer cs.writeMu.Unlock()
	// Bound the write so one wedged client socket cannot hold writeMu
	// and stall every concurrent handler response on this connection.
	_ = cs.conn.SetWriteDeadline(time.Now().Add(defaultWriteStall))
	err := writeFrame(cs.conn, frame{ftype: frameResponse, id: id, payload: encodeResponse(resp)})
	_ = cs.conn.SetWriteDeadline(time.Time{})
	if err != nil {
		// The read side will observe the broken connection and clean up.
		s.logf("wire: write response: %v", err)
	}
}

// OnDrain registers fn to run during Shutdown, after in-flight
// requests have drained (or the drain deadline expired) and before
// listeners and connections are torn down. The journal layer uses this
// for a final flush+fsync, so state written by requests served during
// the drain is never lost. Hooks run at most once, in registration
// order; they do not run on a bare Close.
func (s *Server) OnDrain(fn func()) {
	if fn == nil {
		return
	}
	s.mu.Lock()
	s.drainHooks = append(s.drainHooks, fn)
	s.mu.Unlock()
}

// runDrainHooks fires the registered OnDrain hooks exactly once.
func (s *Server) runDrainHooks() {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		hooks := append([]func(){}, s.drainHooks...)
		s.mu.Unlock()
		for _, fn := range hooks {
			fn()
		}
	})
}

// Shutdown drains the server gracefully: it stops accepting new
// connections, sheds newly arriving requests with StatusOverloaded
// ("server draining") so clients fail over promptly, lets requests
// already dispatched finish, runs the OnDrain hooks, and then closes
// everything down. If ctx expires first, remaining in-flight work is
// aborted (its contexts are cancelled by the final Close) and ctx's
// error is returned — the hooks still run first, so whatever state the
// completed requests produced is flushed. Safe to call multiple times
// and concurrently with Close.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	alreadyClosed := s.closed
	s.draining = true
	ln := s.ln
	s.mu.Unlock()
	if alreadyClosed {
		s.runDrainHooks()
		return s.Close()
	}
	if ln != nil {
		_ = ln.Close()
	}

	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = fmt.Errorf("wire: shutdown: %w", ctx.Err())
	}
	s.runDrainHooks()
	_ = s.Close()
	return err
}

// Draining reports whether the server is shedding new work because a
// Shutdown is in progress.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Close stops the listener, closes all connections, and waits for all
// handler goroutines to finish. In-flight work is aborted: request
// contexts are cancelled. Use Shutdown for a graceful drain. Safe to
// call multiple times.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	s.baseCancel()
	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return nil
}
