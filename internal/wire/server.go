package wire

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"
)

// Handler executes one operation of one service. Implementations are
// invoked concurrently. The returned response's Body is opaque to the
// wire layer. A Handler must not retain req.Body past its return.
type Handler interface {
	ServeCOSM(remote string, req *Request) *Response
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(remote string, req *Request) *Response

// ServeCOSM calls f.
func (f HandlerFunc) ServeCOSM(remote string, req *Request) *Response { return f(remote, req) }

// Server registration errors.
var (
	ErrServiceExists = errors.New("wire: service already registered")
	ErrServerClosed  = errors.New("wire: server closed")
)

// Server hosts named services behind one listener. One server instance
// corresponds to one COSM "node": the trader, browser, name server and
// application services of the prototype are all Handlers registered at a
// Server. The zero value is not usable; call NewServer.
type Server struct {
	logf func(format string, args ...any)

	mu       sync.Mutex
	services map[string]Handler
	ln       Listener
	conns    map[net.Conn]bool
	closed   bool

	wg sync.WaitGroup
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithServerLog directs server diagnostics to logf (default: log.Printf
// for connection-level errors only).
func WithServerLog(logf func(format string, args ...any)) ServerOption {
	return func(s *Server) { s.logf = logf }
}

// NewServer returns an empty server.
func NewServer(opts ...ServerOption) *Server {
	s := &Server{
		services: map[string]Handler{},
		conns:    map[net.Conn]bool{},
		logf:     func(format string, args ...any) { log.Printf(format, args...) },
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Register adds a named service. Registering a duplicate name is an
// error: service identity must be stable for the node's lifetime.
func (s *Server) Register(name string, h Handler) error {
	if name == "" || h == nil {
		return fmt.Errorf("wire: Register(%q) with empty name or nil handler", name)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.services[name]; dup {
		return fmt.Errorf("%w: %q", ErrServiceExists, name)
	}
	s.services[name] = h
	return nil
}

// Unregister removes a named service; unknown names are a no-op.
func (s *Server) Unregister(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.services, name)
}

// ServiceNames returns the registered service names (unordered).
func (s *Server) ServiceNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.services))
	for n := range s.services {
		names = append(names, n)
	}
	return names
}

// Serve starts accepting connections on ln and returns immediately. The
// listener is owned by the server from here on: Close closes it.
func (s *Server) Serve(ln Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return ErrServerClosed
	}
	if s.ln != nil {
		s.mu.Unlock()
		return errors.New("wire: server already serving")
	}
	s.ln = ln
	s.mu.Unlock()

	s.wg.Add(1)
	go s.acceptLoop(ln)
	return nil
}

// ListenAndServe creates a listener for endpoint and serves on it,
// returning the bound endpoint (useful with ephemeral TCP ports).
func (s *Server) ListenAndServe(endpoint string) (string, error) {
	ln, err := Listen(endpoint)
	if err != nil {
		return "", err
	}
	if err := s.Serve(ln); err != nil {
		_ = ln.Close()
		return "", err
	}
	return ln.Endpoint(), nil
}

// Endpoint returns the serving endpoint ("" before Serve).
func (s *Server) Endpoint() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Endpoint()
}

func (s *Server) acceptLoop(ln Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			// Closed listener: quiet shutdown. Anything else is logged.
			if !errors.Is(err, net.ErrClosed) {
				s.logf("wire: accept: %v", err)
			}
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = true
		s.mu.Unlock()

		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		_ = conn.Close()
	}()

	remote := conn.RemoteAddr().String()
	// Responses from concurrent handlers are serialized by writeMu.
	var writeMu sync.Mutex
	var handlers sync.WaitGroup
	defer handlers.Wait()

	for {
		f, err := readFrame(conn)
		if err != nil {
			// EOF and closed-connection errors are normal client
			// departures; framing errors are worth a log line.
			if errors.Is(err, ErrBadFrame) || errors.Is(err, ErrFrameTooLarge) {
				s.logf("wire: %s: %v", remote, err)
			}
			return
		}
		if f.ftype != frameRequest {
			s.logf("wire: %s: unexpected frame type %d", remote, f.ftype)
			return
		}
		req, err := decodeRequest(f.payload)
		if err != nil {
			s.respond(conn, &writeMu, f.id, &Response{Status: StatusBadRequest, ErrMsg: err.Error()})
			continue
		}
		s.mu.Lock()
		h, ok := s.services[req.Service]
		s.mu.Unlock()
		if !ok {
			s.respond(conn, &writeMu, f.id, &Response{Status: StatusNoService, ErrMsg: req.Service})
			continue
		}
		// Each request runs in its own goroutine so one slow operation
		// does not block the connection (the multiplexing that Sun RPC
		// over TCP lacks, but DCE-style RPC provides).
		handlers.Add(1)
		go func(id uint64, req *Request) {
			defer handlers.Done()
			resp := h.ServeCOSM(remote, req)
			if resp == nil {
				resp = &Response{Status: StatusAppError, ErrMsg: "nil response from handler"}
			}
			s.respond(conn, &writeMu, id, resp)
		}(f.id, req)
	}
}

func (s *Server) respond(conn net.Conn, writeMu *sync.Mutex, id uint64, resp *Response) {
	writeMu.Lock()
	defer writeMu.Unlock()
	// Bound the write so one wedged client socket cannot hold writeMu
	// and stall every concurrent handler response on this connection.
	_ = conn.SetWriteDeadline(time.Now().Add(defaultWriteStall))
	err := writeFrame(conn, frame{ftype: frameResponse, id: id, payload: encodeResponse(resp)})
	_ = conn.SetWriteDeadline(time.Time{})
	if err != nil {
		// The read side will observe the broken connection and clean up.
		s.logf("wire: write response: %v", err)
	}
}

// Close stops the listener, closes all connections, and waits for all
// handler goroutines to finish. Safe to call multiple times.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	if ln != nil {
		_ = ln.Close()
	}
	for _, c := range conns {
		_ = c.Close()
	}
	s.wg.Wait()
	return nil
}
