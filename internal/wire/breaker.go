package wire

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrCircuitOpen is returned by Pool.Get and Pool.Call while an
// endpoint's circuit breaker is open: the endpoint has failed
// repeatedly and callers fail fast instead of stalling on it.
var ErrCircuitOpen = errors.New("wire: circuit open")

// BreakerPolicy configures the per-endpoint circuit breakers of a Pool.
type BreakerPolicy struct {
	// Threshold is the number of consecutive dial/transport failures
	// that opens the circuit. Values below 1 disable the breaker.
	Threshold int
	// Cooldown is how long an open circuit rejects callers before
	// allowing a single half-open probe.
	Cooldown time.Duration
}

// DefaultBreakerPolicy returns the breaker configuration of a fresh
// Pool.
func DefaultBreakerPolicy() BreakerPolicy {
	return BreakerPolicy{Threshold: 8, Cooldown: 2 * time.Second}
}

// enabled reports whether the policy describes an active breaker.
func (bp BreakerPolicy) enabled() bool { return bp.Threshold >= 1 }

// Breaker states: closed (healthy), open (failing fast), half-open
// (one probe in flight after the cooldown).
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// BreakerState is the observable state of one endpoint's breaker.
type BreakerState string

// Observable breaker states (Pool.BreakerState).
const (
	BreakerClosed   BreakerState = "closed"
	BreakerOpen     BreakerState = "open"
	BreakerHalfOpen BreakerState = "half-open"
)

// breaker is one endpoint's circuit breaker. All methods are
// goroutine-safe; time is injected by the Pool for testability.
type breaker struct {
	policy BreakerPolicy
	// onTransition, when set, observes every state change (metrics). It
	// is invoked outside the breaker lock.
	onTransition func(to BreakerState)

	mu       sync.Mutex
	state    int
	fails    int       // consecutive failures while closed
	openedAt time.Time // instant of the closed/half-open -> open transition
}

func newBreaker(policy BreakerPolicy) *breaker {
	return &breaker{policy: policy}
}

// notify reports a state change to the transition observer.
func (b *breaker) notify(to BreakerState) {
	if b.onTransition != nil {
		b.onTransition(to)
	}
}

// allow decides whether a caller may use the endpoint now. While open
// it returns ErrCircuitOpen until the cooldown elapses, then admits
// exactly one caller as the half-open probe; further callers keep
// failing fast until the probe reports success or failure.
func (b *breaker) allow(now time.Time) error {
	if !b.policy.enabled() {
		return nil
	}
	b.mu.Lock()
	switch b.state {
	case breakerClosed:
		b.mu.Unlock()
		return nil
	case breakerHalfOpen:
		b.mu.Unlock()
		return fmt.Errorf("%w: probe in flight", ErrCircuitOpen)
	default: // open
		if now.Sub(b.openedAt) < b.policy.Cooldown {
			b.mu.Unlock()
			return fmt.Errorf("%w: cooling down", ErrCircuitOpen)
		}
		b.state = breakerHalfOpen // this caller is the probe
		b.mu.Unlock()
		b.notify(BreakerHalfOpen)
		return nil
	}
}

// success records a healthy interaction (successful dial or call, or
// any response proving the endpoint is alive) and closes the circuit.
func (b *breaker) success() {
	if !b.policy.enabled() {
		return
	}
	b.mu.Lock()
	changed := b.state != breakerClosed
	b.state = breakerClosed
	b.fails = 0
	b.mu.Unlock()
	if changed {
		b.notify(BreakerClosed)
	}
}

// shed records a StatusOverloaded response. A shed is weighed
// distinctly from both success and failure: the endpoint answered, so
// it is provably alive — a half-open probe that gets shed closes the
// circuit rather than reopening it — but an overloaded answer is not
// a healthy interaction, so it does not forgive the consecutive-failure
// streak the way success() does. A flapping endpoint that alternates
// connection failures with sheds still trips the breaker.
func (b *breaker) shed() {
	if !b.policy.enabled() {
		return
	}
	b.mu.Lock()
	changed := b.state == breakerHalfOpen || b.state == breakerOpen
	if changed {
		// Liveness proof: stop failing fast so callers can back off on
		// the server's own hint instead of the breaker's cooldown.
		b.state = breakerClosed
	}
	b.mu.Unlock()
	if changed {
		b.notify(BreakerClosed)
	}
}

// failure records a dial/transport failure. It returns true when this
// failure opened the circuit (for pool statistics).
func (b *breaker) failure(now time.Time) bool {
	if !b.policy.enabled() {
		return false
	}
	b.mu.Lock()
	opened := false
	switch b.state {
	case breakerHalfOpen:
		// The probe failed: back to open, restart the cooldown.
		b.state = breakerOpen
		b.openedAt = now
		opened = true
	case breakerClosed:
		b.fails++
		if b.fails >= b.policy.Threshold {
			b.state = breakerOpen
			b.openedAt = now
			opened = true
		}
	}
	b.mu.Unlock()
	if opened {
		b.notify(BreakerOpen)
	}
	return opened
}

// Breaker is a standalone circuit breaker with the same semantics as
// the Pool's per-endpoint breakers (closed / open / half-open, one
// half-open probe per cooldown), for callers that track the health of
// resources the Pool does not see — the trader's federation links use
// one per link.
type Breaker struct{ b *breaker }

// NewBreaker returns a standalone breaker with the given policy. A
// policy with Threshold < 1 disables it (Allow always admits).
func NewBreaker(policy BreakerPolicy) *Breaker {
	return &Breaker{b: newBreaker(policy)}
}

// Allow decides whether a caller may use the resource now; while open
// it returns ErrCircuitOpen until the cooldown admits one probe.
func (b *Breaker) Allow(now time.Time) error { return b.b.allow(now) }

// Success records a healthy interaction and closes the circuit.
func (b *Breaker) Success() { b.b.success() }

// Failure records a failure; it returns true when this failure opened
// the circuit.
func (b *Breaker) Failure(now time.Time) bool { return b.b.failure(now) }

// State reports the observable state.
func (b *Breaker) State() BreakerState { return b.b.current() }

// current reports the observable state.
func (b *breaker) current() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		return BreakerOpen
	case breakerHalfOpen:
		return BreakerHalfOpen
	}
	return BreakerClosed
}
