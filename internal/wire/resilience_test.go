package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestTransientClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"dial failure", errors.New("dial tcp: connection refused"), true},
		{"client closed", ErrClientClosed, true},
		{"deadline", context.DeadlineExceeded, true},
		{"canceled", context.Canceled, false},
		{"wrapped canceled", fmt.Errorf("call: %w", context.Canceled), false},
		{"remote app error", &RemoteError{Status: StatusAppError}, false},
		{"remote protocol", &RemoteError{Status: StatusProtocol}, false},
		{"remote no service", &RemoteError{Status: StatusNoService}, false},
		// Rejected before dispatch: the op did not run, retry is safe —
		// and this is what an in-flight corrupted frame looks like.
		{"remote bad request", &RemoteError{Status: StatusBadRequest}, true},
		{"wrapped bad request", fmt.Errorf("x: %w", &RemoteError{Status: StatusBadRequest}), true},
	}
	for _, tc := range cases {
		if got := Transient(tc.err); got != tc.want {
			t.Errorf("Transient(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// TestPoolSingleflightDial: many concurrent Gets for one endpoint must
// share a single dial, and the dial must not run under the pool lock —
// Gets for a different endpoint proceed while it is stuck.
func TestPoolSingleflightDial(t *testing.T) {
	_, fastEP := startServer(t, "loop:sf-fast", map[string]Handler{"echo": echoHandler()})

	var dials atomic.Int32
	release := make(chan struct{})
	p := NewPool(WithDialer(func(ctx context.Context, endpoint string) (net.Conn, error) {
		if endpoint == "loop:sf-slow" {
			dials.Add(1)
			<-release
		}
		return DialConnContext(ctx, endpoint)
	}))
	defer p.Close()

	_, slowEP := startServer(t, "loop:sf-slow", map[string]Handler{"echo": echoHandler()})

	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.Get(context.Background(), slowEP)
		}(i)
	}

	// While the slow dial is parked, another endpoint stays reachable:
	// the dial is provably outside the pool lock.
	fastDone := make(chan error, 1)
	go func() {
		_, err := p.Get(context.Background(), fastEP)
		fastDone <- err
	}()
	select {
	case err := <-fastDone:
		if err != nil {
			t.Fatalf("fast Get failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Get(fast) blocked behind a slow dial to another endpoint")
	}

	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("Get %d: %v", i, err)
		}
	}
	if n := dials.Load(); n != 1 {
		t.Fatalf("%d dials for %d concurrent Gets, want 1", n, callers)
	}
}

// TestPoolSingleflightDialFailure: concurrent Gets against a dead
// endpoint share the single dial's error.
func TestPoolSingleflightDialFailure(t *testing.T) {
	var dials atomic.Int32
	release := make(chan struct{})
	dialErr := errors.New("host unreachable")
	p := NewPool(WithDialer(func(context.Context, string) (net.Conn, error) {
		dials.Add(1)
		<-release
		return nil, dialErr
	}))
	defer p.Close()

	const callers = 6
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = p.Get(context.Background(), "loop:sf-dead")
		}(i)
	}
	// Let the callers pile onto the in-flight dial, then fail it.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	for i, err := range errs {
		if !errors.Is(err, dialErr) {
			t.Fatalf("Get %d: err = %v, want the shared dial error", i, err)
		}
	}
	if n := dials.Load(); n != 1 {
		t.Fatalf("%d dials, want 1 shared failed dial", n)
	}
	if s := p.Stats(); s.DialFailures != 1 {
		t.Fatalf("DialFailures = %d, want 1", s.DialFailures)
	}
}

// TestPoolReplacesBrokenClient: a cached client whose connection has
// died is replaced by a fresh dial on the next Get, not returned broken
// forever.
func TestPoolReplacesBrokenClient(t *testing.T) {
	_, bound := startServer(t, "loop:replace", map[string]Handler{"echo": echoHandler()})
	p := NewPool()
	defer p.Close()

	c1, err := p.Get(context.Background(), bound)
	if err != nil {
		t.Fatal(err)
	}
	_ = c1.Close() // simulate the connection dying under the pool

	c2, err := p.Get(context.Background(), bound)
	if err != nil {
		t.Fatal(err)
	}
	if c2 == c1 {
		t.Fatal("Get returned the broken cached client")
	}
	if _, err := c2.Call(context.Background(), &Request{Service: "echo", Op: "Hi"}); err != nil {
		t.Fatalf("replacement client does not work: %v", err)
	}
	if s := p.Stats(); s.Dials != 2 {
		t.Fatalf("Dials = %d, want 2 (original + replacement)", s.Dials)
	}
}

// TestPoolCallRetriesTransient: dial failures are retried under the
// pool's policy until the endpoint comes back.
func TestPoolCallRetriesTransient(t *testing.T) {
	_, bound := startServer(t, "loop:retry-ok", map[string]Handler{"echo": echoHandler()})

	var dials atomic.Int32
	p := NewPool(
		WithDialer(func(ctx context.Context, endpoint string) (net.Conn, error) {
			if dials.Add(1) <= 2 {
				return nil, errors.New("injected dial failure")
			}
			return DialConnContext(ctx, endpoint)
		}),
		WithCallPolicy(CallPolicy{MaxAttempts: 3, BackoffBase: time.Millisecond}),
	)
	defer p.Close()

	body, err := p.Call(context.Background(), bound, &Request{Service: "echo", Op: "Ping", Body: []byte("x")})
	if err != nil {
		t.Fatalf("Call failed despite retries: %v", err)
	}
	if string(body) != "Ping:x" {
		t.Fatalf("body = %q", body)
	}
	if s := p.Stats(); s.Retries != 2 || s.DialFailures != 2 {
		t.Fatalf("stats = %+v, want 2 retries and 2 dial failures", s)
	}
}

// TestPoolCallGivesUpOnRemoteError: a remote application error is
// final — the handler must run exactly once, because the operation may
// not be idempotent.
func TestPoolCallGivesUpOnRemoteError(t *testing.T) {
	var handlerRuns atomic.Int32
	_, bound := startServer(t, "loop:no-retry-remote", map[string]Handler{
		"svc": HandlerFunc(func(_ context.Context, _ string, _ *Request) *Response {
			handlerRuns.Add(1)
			return &Response{Status: StatusAppError, ErrMsg: "no cars left"}
		}),
	})
	p := NewPool(WithCallPolicy(CallPolicy{MaxAttempts: 5, BackoffBase: time.Millisecond}))
	defer p.Close()

	_, err := p.Call(context.Background(), bound, &Request{Service: "svc", Op: "Book"})
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != StatusAppError {
		t.Fatalf("err = %v, want the remote application error", err)
	}
	if n := handlerRuns.Load(); n != 1 {
		t.Fatalf("handler ran %d times, want exactly 1 (no retry of remote errors)", n)
	}
	if s := p.Stats(); s.Retries != 0 {
		t.Fatalf("Retries = %d, want 0", s.Retries)
	}
}

// TestPoolCallRetriesBadRequest: StatusBadRequest means the server
// rejected the frame before dispatch, so the policy may retry it (the
// recovery path for in-flight corruption).
func TestPoolCallRetriesBadRequest(t *testing.T) {
	var runs atomic.Int32
	_, bound := startServer(t, "loop:retry-badreq", map[string]Handler{
		"svc": HandlerFunc(func(_ context.Context, _ string, _ *Request) *Response {
			if runs.Add(1) == 1 {
				return &Response{Status: StatusBadRequest, ErrMsg: "garbled"}
			}
			return &Response{Status: StatusOK, Body: []byte("ok")}
		}),
	})
	p := NewPool(WithCallPolicy(CallPolicy{MaxAttempts: 3, BackoffBase: time.Millisecond}))
	defer p.Close()

	body, err := p.Call(context.Background(), bound, &Request{Service: "svc", Op: "Get"})
	if err != nil || string(body) != "ok" {
		t.Fatalf("Call = %q, %v; want recovery on the retry", body, err)
	}
	if n := runs.Load(); n != 2 {
		t.Fatalf("handler ran %d times, want 2", n)
	}
}

// TestTimeoutKeepsSharedClientAndBreaker: a per-attempt timeout against
// a slow but live server must not drop the shared multiplexed client —
// that would fail every concurrent in-flight call on the endpoint — and
// must not feed the endpoint's breaker: slow is not dead.
func TestTimeoutKeepsSharedClientAndBreaker(t *testing.T) {
	_, bound := startServer(t, "loop:slow-live", map[string]Handler{
		"slow": HandlerFunc(func(_ context.Context, _ string, req *Request) *Response {
			time.Sleep(150 * time.Millisecond)
			return &Response{Status: StatusOK, Body: []byte("late")}
		}),
	})
	p := NewPool(WithBreakerPolicy(BreakerPolicy{Threshold: 2, Cooldown: time.Minute}))
	defer p.Close()

	c1, err := p.Get(context.Background(), bound)
	if err != nil {
		t.Fatal(err)
	}

	impatient := CallPolicy{MaxAttempts: 1, AttemptTimeout: 30 * time.Millisecond}
	for i := 0; i < 4; i++ {
		_, err := p.CallWith(context.Background(), bound, &Request{Service: "slow", Op: "x"}, impatient)
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("call %d err = %v, want DeadlineExceeded", i, err)
		}
	}
	if c1.broken() {
		t.Fatal("per-attempt timeouts broke the shared client")
	}
	c2, err := p.Get(context.Background(), bound)
	if err != nil {
		t.Fatal(err)
	}
	if c2 != c1 {
		t.Fatal("per-attempt timeout dropped the shared client from the pool")
	}
	if st := p.BreakerState(bound); st != BreakerClosed {
		t.Fatalf("breaker = %s after timeouts on a live endpoint, want closed", st)
	}
	// A patient caller still gets through on the same connection.
	patient := CallPolicy{MaxAttempts: 1, AttemptTimeout: 5 * time.Second}
	if body, err := p.CallWith(context.Background(), bound, &Request{Service: "slow", Op: "x"}, patient); err != nil || string(body) != "late" {
		t.Fatalf("patient call = %q, %v; want the late response", body, err)
	}
}

// TestDialHonorsAttemptContext: a black-holed endpoint — the dial never
// completes — must cost a caller at most the per-attempt timeout per
// attempt, not the OS connect timeout (~2 minutes).
func TestDialHonorsAttemptContext(t *testing.T) {
	p := NewPool(
		WithDialer(func(ctx context.Context, _ string) (net.Conn, error) {
			<-ctx.Done() // SYN black hole: nothing ever answers
			return nil, ctx.Err()
		}),
		WithCallPolicy(CallPolicy{MaxAttempts: 2, AttemptTimeout: 50 * time.Millisecond, BackoffBase: time.Millisecond}),
	)
	defer p.Close()

	start := time.Now()
	_, err := p.Call(context.Background(), "loop:blackhole", &Request{Service: "s", Op: "o"})
	if err == nil {
		t.Fatal("call against a black hole succeeded")
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("call took %v; the attempt timeout did not bound the black-holed dial", el)
	}
	if !strings.Contains(err.Error(), "2 of 2 attempt(s) failed") {
		t.Fatalf("err = %v, want 2 of 2 attempts reported", err)
	}
}

// TestCallReportsActualAttemptCount: when the caller's context dies
// before the retry budget is spent, the terminal error reports the
// attempts that actually ran, not the policy maximum.
func TestCallReportsActualAttemptCount(t *testing.T) {
	p := NewPool(
		WithDialer(func(context.Context, string) (net.Conn, error) {
			return nil, errors.New("down")
		}),
		WithCallPolicy(CallPolicy{MaxAttempts: 5}),
	)
	defer p.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.Call(ctx, "loop:x", &Request{Service: "s", Op: "o"})
	if err == nil || !strings.Contains(err.Error(), "1 of 5 attempt(s) failed") {
		t.Fatalf("err = %v, want 1 of 5 attempts reported", err)
	}
}

// fakeClock is a mutable clock for breaker tests.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.now = f.now.Add(d)
	f.mu.Unlock()
}

// TestBreakerLifecycle drives one endpoint's breaker through
// closed -> open -> fail-fast -> half-open probe -> closed using a
// fake clock.
func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	dialOK := atomic.Bool{}
	var dials atomic.Int32
	p := NewPool(
		WithDialer(func(context.Context, string) (net.Conn, error) {
			dials.Add(1)
			if !dialOK.Load() {
				return nil, errors.New("down")
			}
			return DialConn("loop:breaker-live")
		}),
		WithBreakerPolicy(BreakerPolicy{Threshold: 2, Cooldown: time.Minute}),
		WithPoolClock(clk.Now),
	)
	defer p.Close()
	startServer(t, "loop:breaker-live", map[string]Handler{"echo": echoHandler()})

	ep := "loop:breaker-ep"
	// Two consecutive dial failures open the circuit.
	for i := 0; i < 2; i++ {
		if _, err := p.Get(context.Background(), ep); err == nil {
			t.Fatal("Get against a dead endpoint must fail")
		}
	}
	if st := p.BreakerState(ep); st != BreakerOpen {
		t.Fatalf("state after %d failures = %s, want open", 2, st)
	}
	if s := p.Stats(); s.BreakerOpens != 1 {
		t.Fatalf("BreakerOpens = %d, want 1", s.BreakerOpens)
	}

	// While open, callers fail fast without dialing.
	before := dials.Load()
	if _, err := p.Get(context.Background(), ep); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if dials.Load() != before {
		t.Fatal("open breaker still dialed")
	}
	if s := p.Stats(); s.FailFast != 1 {
		t.Fatalf("FailFast = %d, want 1", s.FailFast)
	}

	// Cooldown elapses but the endpoint is still down: the half-open
	// probe fails and the circuit reopens.
	clk.Advance(2 * time.Minute)
	if _, err := p.Get(context.Background(), ep); err == nil || errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("probe err = %v, want the real dial error", err)
	}
	if st := p.BreakerState(ep); st != BreakerOpen {
		t.Fatalf("state after failed probe = %s, want open (reopened)", st)
	}
	if _, err := p.Get(context.Background(), ep); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err right after failed probe = %v, want ErrCircuitOpen", err)
	}

	// Endpoint recovers; next probe closes the circuit.
	clk.Advance(2 * time.Minute)
	dialOK.Store(true)
	if _, err := p.Get(context.Background(), ep); err != nil {
		t.Fatalf("probe after recovery: %v", err)
	}
	if st := p.BreakerState(ep); st != BreakerClosed {
		t.Fatalf("state after successful probe = %s, want closed", st)
	}
	// And normal traffic flows again.
	if _, err := p.Call(context.Background(), ep, &Request{Service: "echo", Op: "Hi"}); err != nil {
		t.Fatalf("call after recovery: %v", err)
	}
}

// TestBreakerHalfOpenAdmitsSingleProbe: during the half-open window
// exactly one caller may probe; the rest keep failing fast.
func TestBreakerHalfOpenAdmitsSingleProbe(t *testing.T) {
	clk := &fakeClock{now: time.Unix(2000, 0)}
	probeStarted := make(chan struct{})
	release := make(chan struct{})
	var dials atomic.Int32
	p := NewPool(
		WithDialer(func(context.Context, string) (net.Conn, error) {
			if dials.Add(1) > 1 {
				close(probeStarted)
				<-release
			}
			return nil, errors.New("down")
		}),
		WithBreakerPolicy(BreakerPolicy{Threshold: 1, Cooldown: time.Second}),
		WithPoolClock(clk.Now),
	)
	defer p.Close()

	ep := "loop:half-open"
	if _, err := p.Get(context.Background(), ep); err == nil {
		t.Fatal("first Get must fail")
	}
	clk.Advance(2 * time.Second)

	probeErr := make(chan error, 1)
	go func() {
		_, err := p.Get(context.Background(), ep)
		probeErr <- err
	}()
	<-probeStarted
	// Probe is parked inside its dial; everyone else must fail fast.
	if _, err := p.Get(context.Background(), ep); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("err while probe in flight = %v, want ErrCircuitOpen", err)
	}
	close(release)
	if err := <-probeErr; err == nil || errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("probe err = %v, want the dial error", err)
	}
}

// TestWriteDeadlineUnwedgesStuckPeer: a peer that accepts the
// connection but never reads must not wedge writeMu forever — the
// context deadline bounds the write, and the connection is declared
// dead for all users.
func TestWriteDeadlineUnwedgesStuckPeer(t *testing.T) {
	us, them := net.Pipe()
	defer them.Close()
	c := NewClientConn("pipe:stuck", us)
	defer c.Close()

	big := make([]byte, 1<<16) // larger than any pipe buffering
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()

	done := make(chan error, 1)
	go func() {
		_, err := c.Call(ctx, &Request{Service: "s", Op: "o", Body: big})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("write against a stuck peer must fail")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Call wedged on a stuck peer despite its deadline")
	}

	// The poisoned connection must fail subsequent calls immediately,
	// not strand them behind writeMu.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	if _, err := c.Call(ctx2, &Request{Service: "s", Op: "o"}); err == nil {
		t.Fatal("second call on the poisoned connection must fail")
	} else if errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second call waited out its own deadline (%v): writeMu was wedged", err)
	}
}

// discardConn is an always-succeeding in-memory net.Conn for fault
// determinism tests.
type discardConn struct{ net.Conn }

func (discardConn) Read(p []byte) (int, error)  { return len(p), nil }
func (discardConn) Write(p []byte) (int, error) { return len(p), nil }
func (discardConn) Close() error                { return nil }

// TestFaultNetDeterminism: the same seed and the same operation
// sequence must produce the identical fault schedule.
func TestFaultNetDeterminism(t *testing.T) {
	cfg := FaultConfig{
		Seed:        99,
		ResetProb:   0.2,
		DropProb:    0.2,
		CorruptProb: 0.2,
	}
	runSchedule := func() FaultStats {
		f := NewFaultNet(cfg, func(context.Context, string) (net.Conn, error) { return discardConn{}, nil })
		buf := make([]byte, 64)
		for i := 0; i < 20; i++ {
			conn, err := f.Dial(context.Background(), "loop:determinism")
			if err != nil {
				continue
			}
			for j := 0; j < 10; j++ {
				_, _ = conn.Write(buf)
				_, _ = conn.Read(buf)
			}
		}
		return f.Stats()
	}
	a, b := runSchedule(), runSchedule()
	if a != b {
		t.Fatalf("same seed, different schedules:\n%+v\n%+v", a, b)
	}
	if a.Resets == 0 || a.Drops == 0 || a.Corruptions == 0 {
		t.Fatalf("schedule injected nothing: %+v", a)
	}
}

// TestFaultNetDialErrors: injected dial failures carry
// ErrInjectedFault and are counted.
func TestFaultNetDialErrors(t *testing.T) {
	f := NewFaultNet(FaultConfig{Seed: 3, DialErrorProb: 1},
		func(context.Context, string) (net.Conn, error) { return discardConn{}, nil })
	if _, err := f.Dial(context.Background(), "loop:x"); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("err = %v, want ErrInjectedFault", err)
	}
	if s := f.Stats(); s.Dials != 1 || s.DialErrors != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

// closeTrackConn observes Close for partition tests.
type closeTrackConn struct {
	discardConn
	closed atomic.Bool
}

func (c *closeTrackConn) Close() error { c.closed.Store(true); return nil }

// TestFaultNetBlockPartitions: Block fails new dials to the endpoint
// deterministically and severs live connections; Unblock heals.
func TestFaultNetBlockPartitions(t *testing.T) {
	live := &closeTrackConn{}
	f := NewFaultNet(FaultConfig{Seed: 5},
		func(context.Context, string) (net.Conn, error) { return live, nil })
	conn, err := f.Dial(context.Background(), "loop:a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Dial(context.Background(), "loop:b"); err != nil {
		t.Fatal(err)
	}

	f.Block("loop:a")
	if !live.closed.Load() {
		t.Fatal("Block left the live connection to the endpoint open")
	}
	if _, err := f.Dial(context.Background(), "loop:a"); !errors.Is(err, ErrInjectedFault) {
		t.Fatalf("dial to blocked endpoint = %v, want ErrInjectedFault", err)
	}
	if _, err := f.Dial(context.Background(), "loop:b"); err != nil {
		t.Fatalf("unrelated endpoint caught the partition: %v", err)
	}

	f.Unblock("loop:a")
	if _, err := f.Dial(context.Background(), "loop:a"); err != nil {
		t.Fatalf("dial after Unblock = %v", err)
	}
	_ = conn.Close()
}

// TestPoolSurvivesFaultyTransport: a pool dialing through an
// aggressive FaultNet still completes every idempotent call, by
// retrying past resets and corruption.
func TestPoolSurvivesFaultyTransport(t *testing.T) {
	_, bound := startServer(t, "loop:chaos-pool", map[string]Handler{"echo": echoHandler()})
	// Resets only: every reset surfaces as an error, so retries always
	// see the failure. (A corrupted payload byte can pass undetected —
	// the frame layer has no checksum — so corruption recovery is not a
	// guarantee this test could assert.)
	f := NewFaultNet(FaultConfig{Seed: 11, ResetProb: 0.05}, DialConnContext)
	p := NewPool(
		WithDialer(f.Dial),
		WithCallPolicy(CallPolicy{
			MaxAttempts:    8,
			AttemptTimeout: time.Second,
			BackoffBase:    time.Millisecond,
			BackoffMax:     10 * time.Millisecond,
		}),
		// Plenty of headroom: injected faults must not strand the
		// endpoint behind an open breaker for this workload.
		WithBreakerPolicy(BreakerPolicy{Threshold: 100, Cooldown: 10 * time.Millisecond}),
	)
	defer p.Close()

	ctx := context.Background()
	for i := 0; i < 40; i++ {
		body, err := p.Call(ctx, bound, &Request{Service: "echo", Op: "N", Body: []byte{byte(i)}})
		if err != nil {
			t.Fatalf("call %d failed despite retries: %v", i, err)
		}
		if want := append([]byte("N:"), byte(i)); string(body) != string(want) {
			t.Fatalf("call %d body = %q, want %q", i, body, want)
		}
	}
	if s := f.Stats(); s.Resets == 0 {
		t.Logf("note: schedule injected no resets (stats %+v)", s)
	}
}
