package wire

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func quietServerWith(p AdmissionPolicy) *Server {
	return NewServer(WithServerLog(func(string, ...any) {}), WithAdmission(p))
}

func startServerWith(t *testing.T, endpoint string, p AdmissionPolicy, services map[string]Handler) (*Server, string) {
	t.Helper()
	s := quietServerWith(p)
	for name, h := range services {
		if err := s.Register(name, h); err != nil {
			t.Fatal(err)
		}
	}
	bound, err := s.ListenAndServe(endpoint)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, bound
}

// The caller's deadline must surface in the handler's context,
// shortened at most by the propagation itself.
func TestDeadlinePropagatesToHandler(t *testing.T) {
	deadlines := make(chan time.Duration, 1)
	h := HandlerFunc(func(ctx context.Context, _ string, _ *Request) *Response {
		d, ok := ctx.Deadline()
		if !ok {
			deadlines <- 0
		} else {
			deadlines <- time.Until(d)
		}
		return &Response{Status: StatusOK}
	})
	_, bound := startServer(t, "loop:deadline-prop", map[string]Handler{"svc": h})
	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := c.Call(ctx, &Request{Service: "svc", Op: "X"}); err != nil {
		t.Fatal(err)
	}
	rem := <-deadlines
	if rem <= 0 || rem > 5*time.Second {
		t.Fatalf("handler saw remaining budget %v, want (0s, 5s]", rem)
	}

	// Without a caller deadline the handler context has none either.
	if _, err := c.Call(context.Background(), &Request{Service: "svc", Op: "X"}); err != nil {
		t.Fatal(err)
	}
	if rem := <-deadlines; rem != 0 {
		t.Fatalf("handler saw deadline %v for an unbounded call", rem)
	}
}

// A request whose propagated deadline has already expired must be
// rejected before dispatch: the handler never runs.
func TestExpiredRequestNeverDispatched(t *testing.T) {
	var executed atomic.Int64
	h := HandlerFunc(func(_ context.Context, _ string, _ *Request) *Response {
		executed.Add(1)
		return &Response{Status: StatusOK}
	})
	_, bound := startServer(t, "loop:expired", map[string]Handler{"svc": h})

	// The client refuses an expired context without a round trip...
	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := c.Call(ctx, &Request{Service: "svc", Op: "X"}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}

	// ...and the server independently rejects a frame that arrives with
	// an exhausted TTL (a 1µs budget is expired by the time it is read).
	conn, err := DialConn(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := encodeRequest(&Request{Service: "svc", Op: "X"})
	if err := writeFrame(conn, frame{ftype: frameRequest, id: 7, ttl: 1, payload: req}); err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := decodeResponse(f.version, f.payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusDeadlineExpired {
		t.Fatalf("status = %v, want StatusDeadlineExpired", resp.Status)
	}
	if n := executed.Load(); n != 0 {
		t.Fatalf("handler executed %d times for expired requests", n)
	}
}

// Cancelling the client attempt must cancel the server-side context.
func TestClientCancelCancelsServerContext(t *testing.T) {
	started := make(chan struct{})
	cancelled := make(chan error, 1)
	h := HandlerFunc(func(ctx context.Context, _ string, _ *Request) *Response {
		close(started)
		select {
		case <-ctx.Done():
			cancelled <- ctx.Err()
		case <-time.After(5 * time.Second):
			cancelled <- nil
		}
		return &Response{Status: StatusOK}
	})
	_, bound := startServer(t, "loop:cancel-prop", map[string]Handler{"svc": h})
	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(ctx, &Request{Service: "svc", Op: "X"})
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("client err = %v, want Canceled", err)
	}
	if err := <-cancelled; !errors.Is(err, context.Canceled) {
		t.Fatalf("server ctx err = %v, want Canceled", err)
	}
}

// Beyond MaxInFlight + MaxQueue the server sheds with StatusOverloaded
// and the configured retry-after hint instead of queueing unboundedly.
func TestShedWhenSaturated(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	h := HandlerFunc(func(_ context.Context, _ string, _ *Request) *Response {
		started <- struct{}{}
		<-release
		return &Response{Status: StatusOK}
	})
	s, bound := startServerWith(t, "loop:shed", AdmissionPolicy{
		MaxInFlight: 2,
		MaxQueue:    0,
		RetryAfter:  40 * time.Millisecond,
	}, map[string]Handler{"svc": h})
	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	results := make(chan error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Call(context.Background(), &Request{Service: "svc", Op: "X"})
			results <- err
		}()
	}
	<-started
	<-started

	// Both slots busy, no queue: the third call must be shed, promptly.
	_, err = c.Call(context.Background(), &Request{Service: "svc", Op: "X"})
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != StatusOverloaded {
		t.Fatalf("err = %v, want StatusOverloaded", err)
	}
	if re.RetryAfter != 40*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want 40ms", re.RetryAfter)
	}
	if !Transient(err) {
		t.Fatal("an overloaded shed must classify as transient")
	}

	close(release)
	wg.Wait()
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("admitted call failed: %v", err)
		}
	}
	if st := s.Stats(); st.Shed != 1 || st.Served != 2 {
		t.Fatalf("stats = %+v, want Shed=1 Served=2", st)
	}
}

// A queued request is admitted when a slot frees within QueueWait...
func TestQueueAdmitsWhenSlotFrees(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	h := HandlerFunc(func(_ context.Context, _ string, req *Request) *Response {
		if req.Op == "Slow" {
			started <- struct{}{}
			<-release
		}
		return &Response{Status: StatusOK}
	})
	_, bound := startServerWith(t, "loop:queue-ok", AdmissionPolicy{
		MaxInFlight: 1,
		MaxQueue:    4,
		QueueWait:   5 * time.Second,
	}, map[string]Handler{"svc": h})
	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	slow := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), &Request{Service: "svc", Op: "Slow"})
		slow <- err
	}()
	<-started

	// This call queues behind Slow; releasing Slow must admit it.
	queued := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), &Request{Service: "svc", Op: "Fast"})
		queued <- err
	}()
	time.Sleep(10 * time.Millisecond) // let it reach the queue
	close(release)
	if err := <-queued; err != nil {
		t.Fatalf("queued call failed: %v", err)
	}
	if err := <-slow; err != nil {
		t.Fatalf("slow call failed: %v", err)
	}
}

// ...and shed once its queue wait is exhausted.
func TestQueueWaitExceededSheds(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{}, 1)
	h := HandlerFunc(func(_ context.Context, _ string, _ *Request) *Response {
		started <- struct{}{}
		<-release
		return &Response{Status: StatusOK}
	})
	_, bound := startServerWith(t, "loop:queue-shed", AdmissionPolicy{
		MaxInFlight: 1,
		MaxQueue:    4,
		QueueWait:   20 * time.Millisecond,
	}, map[string]Handler{"svc": h})
	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	go func() {
		_, _ = c.Call(context.Background(), &Request{Service: "svc", Op: "Slow"})
	}()
	<-started

	_, err = c.Call(context.Background(), &Request{Service: "svc", Op: "X"})
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != StatusOverloaded {
		t.Fatalf("err = %v, want StatusOverloaded after queue wait", err)
	}
}

// One connection cannot monopolise the server: past MaxPerConn its
// requests are shed even though server-wide slots remain.
func TestPerConnLimit(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 16)
	h := HandlerFunc(func(_ context.Context, _ string, _ *Request) *Response {
		started <- struct{}{}
		<-release
		return &Response{Status: StatusOK}
	})
	_, bound := startServerWith(t, "loop:per-conn", AdmissionPolicy{
		MaxInFlight: 8,
		MaxPerConn:  1,
	}, map[string]Handler{"svc": h})

	c1, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	go func() {
		_, _ = c1.Call(context.Background(), &Request{Service: "svc", Op: "X"})
	}()
	<-started

	// Second request on the same connection: shed.
	_, err = c1.Call(context.Background(), &Request{Service: "svc", Op: "X"})
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != StatusOverloaded {
		t.Fatalf("same-conn err = %v, want StatusOverloaded", err)
	}

	// A different connection still has budget.
	c2, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	ok := make(chan error, 1)
	go func() {
		_, err := c2.Call(context.Background(), &Request{Service: "svc", Op: "X"})
		ok <- err
	}()
	<-started // the other connection's request was dispatched
	close(release)
	if err := <-ok; err != nil {
		t.Fatalf("other-conn call failed: %v", err)
	}
}

// A panicking handler yields StatusAppError and leaves the daemon --
// and its other services -- alive.
func TestHandlerPanicRecovered(t *testing.T) {
	boom := HandlerFunc(func(_ context.Context, _ string, _ *Request) *Response {
		panic("boom")
	})
	s, bound := startServer(t, "loop:panic", map[string]Handler{
		"boom": boom,
		"echo": echoHandler(),
	})
	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Call(context.Background(), &Request{Service: "boom", Op: "X"})
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != StatusAppError {
		t.Fatalf("err = %v, want StatusAppError", err)
	}
	// The server must still serve other requests on the same connection.
	body, err := c.Call(context.Background(), &Request{Service: "echo", Op: "Ping", Body: []byte("alive")})
	if err != nil {
		t.Fatalf("call after panic: %v", err)
	}
	if string(body) != "Ping:alive" {
		t.Fatalf("body = %q", body)
	}
	if st := s.Stats(); st.Panics != 1 {
		t.Fatalf("stats = %+v, want Panics=1", st)
	}
}

// Shutdown drains: in-flight requests finish, new ones are shed.
func TestShutdownDrains(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	h := HandlerFunc(func(_ context.Context, _ string, _ *Request) *Response {
		close(started)
		<-release
		return &Response{Status: StatusOK, Body: []byte("drained")}
	})
	s := quietServer()
	if err := s.Register("svc", h); err != nil {
		t.Fatal(err)
	}
	bound, err := s.ListenAndServe("loop:drain")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	inflight := make(chan error, 1)
	var body []byte
	go func() {
		var err error
		body, err = c.Call(context.Background(), &Request{Service: "svc", Op: "X"})
		inflight <- err
	}()
	<-started

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// Wait until the drain is visible, then verify new work is shed.
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	_, err = c.Call(context.Background(), &Request{Service: "svc", Op: "X"})
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != StatusOverloaded {
		t.Fatalf("call during drain: err = %v, want StatusOverloaded", err)
	}

	close(release)
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight call failed during drain: %v", err)
	}
	if string(body) != "drained" {
		t.Fatalf("body = %q", body)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

// Shutdown must give up when its context expires with work stuck.
func TestShutdownDeadline(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	h := HandlerFunc(func(ctx context.Context, _ string, _ *Request) *Response {
		close(started)
		// Honour ctx (the documented contract): after Shutdown's drain
		// deadline passes, the final Close cancels it and we unwedge.
		select {
		case <-release:
		case <-ctx.Done():
		}
		return &Response{Status: StatusOK}
	})
	s := quietServer()
	if err := s.Register("svc", h); err != nil {
		t.Fatal(err)
	}
	bound, err := s.ListenAndServe("loop:drain-deadline")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go func() {
		_, _ = c.Call(context.Background(), &Request{Service: "svc", Op: "X"})
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
}

// Pool.CallWith must back off at least the server's retry-after hint
// before retrying a shed attempt, and a shed must not trip the breaker.
func TestPoolHonorsRetryAfterHint(t *testing.T) {
	const hint = 60 * time.Millisecond
	var calls atomic.Int64
	var admitted atomic.Bool
	h := HandlerFunc(func(_ context.Context, _ string, _ *Request) *Response {
		return &Response{Status: StatusOK}
	})
	// Shed the first attempt ourselves so the hint path is deterministic.
	shedFirst := HandlerFunc(func(ctx context.Context, remote string, req *Request) *Response {
		if calls.Add(1) == 1 {
			return &Response{Status: StatusOverloaded, ErrMsg: "synthetic", RetryAfter: hint}
		}
		admitted.Store(true)
		return h.ServeCOSM(ctx, remote, req)
	})
	_, bound := startServer(t, "loop:retry-after", map[string]Handler{"svc": shedFirst})

	p := NewPool(WithBreakerPolicy(BreakerPolicy{Threshold: 1, Cooldown: time.Hour}))
	defer p.Close()
	policy := CallPolicy{MaxAttempts: 2, BackoffBase: time.Millisecond, BackoffMax: time.Millisecond}

	start := time.Now()
	if _, err := p.CallWith(context.Background(), bound, &Request{Service: "svc", Op: "X"}, policy); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if !admitted.Load() {
		t.Fatal("second attempt never ran")
	}
	if elapsed < hint {
		t.Fatalf("retried after %v, want >= hint %v", elapsed, hint)
	}
	if st := p.Stats(); st.Sheds != 1 {
		t.Fatalf("stats = %+v, want Sheds=1", st)
	}
	// Threshold 1 means a single connection-class failure would have
	// opened the breaker; the shed must not have.
	if state := p.BreakerState(bound); state != BreakerClosed {
		t.Fatalf("breaker = %v after shed, want closed", state)
	}
}

// A shed answer during half-open proves liveness: the circuit closes
// instead of reopening, but the shed does not erase failure history the
// way a success would.
func TestBreakerShedSemantics(t *testing.T) {
	b := newBreaker(BreakerPolicy{Threshold: 2, Cooldown: time.Second})
	now := time.Unix(0, 0)

	b.failure(now)
	b.shed()
	if b.current() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.current())
	}
	// The pre-shed failure still counts: one more failure trips it.
	if opened := b.failure(now); !opened {
		t.Fatal("second failure must open (shed must not reset the streak)")
	}

	// Half-open probe answered with a shed: close the circuit.
	now = now.Add(2 * time.Second)
	if err := b.allow(now); err != nil {
		t.Fatalf("allow after cooldown: %v", err)
	}
	if b.current() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.current())
	}
	b.shed()
	if b.current() != BreakerClosed {
		t.Fatalf("state after half-open shed = %v, want closed", b.current())
	}
}

// A v1 peer (no TTL extension, no retry-after field) must still be
// served: version negotiation is per-frame and backward compatible.
func TestServesV1Frames(t *testing.T) {
	_, bound := startServer(t, "loop:v1-compat", map[string]Handler{"echo": echoHandler()})
	conn, err := DialConn(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Hand-build a v1 request frame: 16-byte header, no TTL extension.
	payload := encodeRequest(&Request{Service: "echo", Op: "Ping", Body: []byte("old")})
	hdr := make([]byte, frameHeaderLen)
	hdr[0], hdr[1] = 'C', 'W'
	hdr[2] = 1 // version 1
	hdr[3] = frameRequest
	binary.BigEndian.PutUint64(hdr[4:], 42)
	binary.BigEndian.PutUint32(hdr[12:], uint32(len(payload)))
	if _, err := conn.Write(append(hdr, payload...)); err != nil {
		t.Fatal(err)
	}

	f, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if f.id != 42 || f.ftype != frameResponse {
		t.Fatalf("frame = %+v", f)
	}
	resp, err := decodeResponse(f.version, f.payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK || string(resp.Body) != "Ping:old" {
		t.Fatalf("resp = %+v", resp)
	}
}

// Request frames round-trip their TTL through the framing layer.
func TestFrameTTLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := frame{ftype: frameRequest, id: 9, ttl: 123456, payload: []byte("p")}
	if err := writeFrame(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ttl != want.ttl || got.id != want.id || !bytes.Equal(got.payload, want.payload) {
		t.Fatalf("round trip = %+v", got)
	}

	// Cancel frames carry no payload and no TTL.
	buf.Reset()
	if err := writeFrame(&buf, frame{ftype: frameCancel, id: 9}); err != nil {
		t.Fatal(err)
	}
	got, err = readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ftype != frameCancel || got.id != 9 || len(got.payload) != 0 {
		t.Fatalf("cancel round trip = %+v", got)
	}
	// A truncated TTL extension is a framing error, not a hang.
	raw := []byte{'C', 'W', 2, frameRequest, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 1, 2}
	if _, err := readFrame(bytes.NewReader(raw)); !errors.Is(err, ErrBadFrame) && !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("truncated TTL err = %v", err)
	}
}

// ttlOf never returns 0 for a real deadline (0 means "no deadline").
func TestTTLOf(t *testing.T) {
	now := time.Unix(100, 0)
	cases := []struct {
		rem  time.Duration
		want uint64
	}{
		{-time.Second, 1},
		{0, 1},
		{500 * time.Nanosecond, 1},
		{time.Millisecond, 1000},
		{time.Second, 1000000},
	}
	for _, c := range cases {
		if got := ttlOf(now.Add(c.rem), now); got != c.want {
			t.Errorf("ttlOf(+%v) = %d, want %d", c.rem, got, c.want)
		}
	}
}

// Under sustained synthetic overload the goroutine population stays
// bounded by MaxInFlight + MaxQueue rather than growing per request.
func TestOverloadDoesNotAccumulateGoroutines(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	h := HandlerFunc(func(_ context.Context, _ string, _ *Request) *Response {
		<-release
		return &Response{Status: StatusOK}
	})
	s, bound := startServerWith(t, "loop:bounded", AdmissionPolicy{
		MaxInFlight: 2,
		MaxQueue:    2,
		QueueWait:   5 * time.Second,
	}, map[string]Handler{"svc": h})
	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Fire many concurrent calls; all but MaxInFlight+MaxQueue must be
	// shed (responded inline without a handler goroutine).
	const n = 40
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := c.Call(context.Background(), &Request{Service: "svc", Op: "X"})
			errs <- err
		}()
	}
	sheds := 0
	deadline := time.After(5 * time.Second)
	for i := 0; i < n-4; i++ {
		select {
		case err := <-errs:
			var re *RemoteError
			if errors.As(err, &re) && re.Status == StatusOverloaded {
				sheds++
			} else {
				t.Fatalf("unexpected result under overload: %v", err)
			}
		case <-deadline:
			t.Fatalf("only %d sheds arrived", sheds)
		}
	}
	if sheds != n-4 {
		t.Fatalf("sheds = %d, want %d", sheds, n-4)
	}
	if st := s.Stats(); st.Shed != uint64(n-4) {
		t.Fatalf("server sheds = %d, want %d", st.Shed, n-4)
	}
}

// Drain hooks run exactly once per server, during Shutdown, after the
// in-flight work has finished — and never on a bare Close.
func TestShutdownRunsDrainHooks(t *testing.T) {
	var order []string
	var mu sync.Mutex
	note := func(what string) {
		mu.Lock()
		order = append(order, what)
		mu.Unlock()
	}

	release := make(chan struct{})
	started := make(chan struct{})
	h := HandlerFunc(func(_ context.Context, _ string, _ *Request) *Response {
		close(started)
		<-release
		note("handler")
		return &Response{Status: StatusOK}
	})
	s := quietServer()
	if err := s.Register("svc", h); err != nil {
		t.Fatal(err)
	}
	s.OnDrain(nil) // must be ignored, not panic during Shutdown
	s.OnDrain(func() { note("hook1") })
	s.OnDrain(func() { note("hook2") })
	bound, err := s.ListenAndServe("loop:drain-hooks")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	inflight := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), &Request{Service: "svc", Op: "X"})
		inflight <- err
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(ctx) }()
	for !s.Draining() {
		time.Sleep(time.Millisecond)
	}
	mu.Lock()
	ran := len(order)
	mu.Unlock()
	if ran != 0 {
		t.Fatalf("drain hooks ran before in-flight work finished: %v", order)
	}

	close(release)
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight call: %v", err)
	}
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	mu.Lock()
	got := append([]string(nil), order...)
	mu.Unlock()
	want := []string{"handler", "hook1", "hook2"}
	if len(got) != len(want) {
		t.Fatalf("order = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}

	// A second Shutdown must not re-run the hooks.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
	mu.Lock()
	again := len(order)
	mu.Unlock()
	if again != len(want) {
		t.Fatalf("hooks re-ran on second Shutdown: %v", order)
	}
}

// A bare Close skips the drain hooks: there is no drain, so nothing can
// be flushed safely.
func TestCloseSkipsDrainHooks(t *testing.T) {
	var ran atomic.Int64
	s := quietServer()
	s.OnDrain(func() { ran.Add(1) })
	if _, err := s.ListenAndServe("loop:close-no-hooks"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if n := ran.Load(); n != 0 {
		t.Fatalf("drain hooks ran %d times on bare Close, want 0", n)
	}
}
