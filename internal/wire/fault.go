package wire

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedFault marks failures manufactured by a FaultNet, so tests
// and the chaos harness can tell injected damage from real damage.
var ErrInjectedFault = errors.New("wire: injected fault")

// FaultConfig parameterises a FaultNet. All probabilities are in
// [0, 1] and are drawn per event (per dial, per Read/Write call) from
// one seeded RNG, so a single-threaded caller observes a fully
// deterministic fault sequence for a given seed.
type FaultConfig struct {
	// Seed drives all fault decisions deterministically.
	Seed int64

	// DialErrorProb is the probability a Dial fails outright with
	// ErrInjectedFault ("host unreachable").
	DialErrorProb float64
	// ResetProb is the probability a Read or Write call tears the
	// connection down instead ("connection reset by peer").
	ResetProb float64
	// DropProb is the probability a Write is silently swallowed: the
	// caller believes the frame was sent, the peer never sees it
	// ("packet loss" at frame granularity).
	DropProb float64
	// CorruptProb is the probability one byte of a Read or Write is
	// flipped ("bit rot on the wire").
	CorruptProb float64

	// Latency is added to every Read and Write call; LatencyJitter
	// adds a further uniform random delay on top.
	Latency       time.Duration
	LatencyJitter time.Duration
}

// FaultStats counts injected events (monotonic, goroutine-safe).
type FaultStats struct {
	Dials       uint64 // dial attempts seen
	DialErrors  uint64 // dials failed by injection
	Resets      uint64 // connections torn down by injection
	Drops       uint64 // writes swallowed
	Corruptions uint64 // bytes flipped
}

// FaultNet is a deterministic fault-injecting transport: it wraps a
// dialer (typically DialConnContext) and returns connections that
// inject latency, resets, drops and corruption under a seeded RNG.
// Plug it into a Pool with WithDialer to exercise every layer above
// the wire against realistic network damage:
//
//	faults := wire.NewFaultNet(wire.FaultConfig{Seed: 7, ResetProb: 0.05}, wire.DialConnContext)
//	pool := wire.NewPool(wire.WithDialer(faults.Dial))
type FaultNet struct {
	cfg  FaultConfig
	next func(ctx context.Context, endpoint string) (net.Conn, error)

	mu  sync.Mutex
	rng *rand.Rand

	// blocked holds endpoints under a deterministic partition: dials to
	// them fail outright and live connections are severed the moment the
	// block lands. conns tracks every live fault connection by endpoint
	// so Block can cut established links, not just future dials.
	blocked map[string]bool
	conns   map[*faultConn]string

	dials       atomic.Uint64
	dialErrors  atomic.Uint64
	resets      atomic.Uint64
	drops       atomic.Uint64
	corruptions atomic.Uint64
}

// NewFaultNet returns a fault-injecting wrapper around next.
func NewFaultNet(cfg FaultConfig, next func(ctx context.Context, endpoint string) (net.Conn, error)) *FaultNet {
	return &FaultNet{
		cfg:     cfg,
		next:    next,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		blocked: make(map[string]bool),
		conns:   make(map[*faultConn]string),
	}
}

// Block partitions this side of the network from the given endpoints:
// new dials to them fail with ErrInjectedFault and every live
// connection to them is severed immediately. Blocking is deterministic
// (no probability roll) — it is the soak harness's partition primitive;
// one-sided blocks model asymmetric partitions, since each node carries
// its own FaultNet for outbound traffic.
func (f *FaultNet) Block(endpoints ...string) {
	f.mu.Lock()
	var cut []*faultConn
	for _, ep := range endpoints {
		f.blocked[ep] = true
		for c, target := range f.conns {
			if target == ep {
				cut = append(cut, c)
			}
		}
	}
	f.mu.Unlock()
	for _, c := range cut {
		_ = c.Conn.Close()
	}
}

// Unblock heals a partition created by Block.
func (f *FaultNet) Unblock(endpoints ...string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, ep := range endpoints {
		delete(f.blocked, ep)
	}
}

// Blocked reports whether an endpoint is currently partitioned.
func (f *FaultNet) Blocked(endpoint string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.blocked[endpoint]
}

// Stats returns a snapshot of the injected-event counters.
func (f *FaultNet) Stats() FaultStats {
	return FaultStats{
		Dials:       f.dials.Load(),
		DialErrors:  f.dialErrors.Load(),
		Resets:      f.resets.Load(),
		Drops:       f.drops.Load(),
		Corruptions: f.corruptions.Load(),
	}
}

// roll draws one uniform [0,1) variate from the shared seeded stream.
func (f *FaultNet) roll() float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Float64()
}

// jitter draws a uniform delay in [0, max).
func (f *FaultNet) jitter(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return time.Duration(f.rng.Int63n(int64(max)))
}

// corruptIndex picks the byte to flip in a buffer of length n.
func (f *FaultNet) corruptIndex(n int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rng.Intn(n)
}

// Dial opens a connection through the wrapped dialer, possibly failing
// by injection.
func (f *FaultNet) Dial(ctx context.Context, endpoint string) (net.Conn, error) {
	f.dials.Add(1)
	if f.Blocked(endpoint) {
		f.dialErrors.Add(1)
		return nil, fmt.Errorf("%w: dial %s blocked (partition)", ErrInjectedFault, endpoint)
	}
	if f.cfg.DialErrorProb > 0 && f.roll() < f.cfg.DialErrorProb {
		f.dialErrors.Add(1)
		return nil, fmt.Errorf("%w: dial %s refused", ErrInjectedFault, endpoint)
	}
	conn, err := f.next(ctx, endpoint)
	if err != nil {
		return nil, err
	}
	fc := &faultConn{Conn: conn, net: f, endpoint: endpoint}
	f.mu.Lock()
	if f.blocked[endpoint] { // partition landed during the dial
		f.mu.Unlock()
		_ = conn.Close()
		f.dialErrors.Add(1)
		return nil, fmt.Errorf("%w: dial %s blocked (partition)", ErrInjectedFault, endpoint)
	}
	f.conns[fc] = endpoint
	f.mu.Unlock()
	return fc, nil
}

// faultConn injects faults on both directions of one connection.
type faultConn struct {
	net.Conn
	net      *FaultNet
	endpoint string
}

// Close drops the connection from the partition registry.
func (c *faultConn) Close() error {
	c.net.mu.Lock()
	delete(c.net.conns, c)
	c.net.mu.Unlock()
	return c.Conn.Close()
}

// delay applies the configured latency to one I/O call.
func (c *faultConn) delay() {
	d := c.net.cfg.Latency + c.net.jitter(c.net.cfg.LatencyJitter)
	if d > 0 {
		time.Sleep(d)
	}
}

// reset tears the connection down and reports the injected error.
func (c *faultConn) reset(op string) error {
	c.net.resets.Add(1)
	_ = c.Close()
	return fmt.Errorf("%w: connection reset during %s", ErrInjectedFault, op)
}

func (c *faultConn) Read(p []byte) (int, error) {
	c.delay()
	cfg := &c.net.cfg
	if cfg.ResetProb > 0 && c.net.roll() < cfg.ResetProb {
		return 0, c.reset("read")
	}
	n, err := c.Conn.Read(p)
	if n > 0 && cfg.CorruptProb > 0 && c.net.roll() < cfg.CorruptProb {
		c.net.corruptions.Add(1)
		p[c.net.corruptIndex(n)] ^= 0x20
	}
	return n, err
}

func (c *faultConn) Write(p []byte) (int, error) {
	c.delay()
	cfg := &c.net.cfg
	if cfg.ResetProb > 0 && c.net.roll() < cfg.ResetProb {
		return 0, c.reset("write")
	}
	if cfg.DropProb > 0 && c.net.roll() < cfg.DropProb {
		c.net.drops.Add(1)
		return len(p), nil // swallowed: the caller believes it was sent
	}
	if cfg.CorruptProb > 0 && c.net.roll() < cfg.CorruptProb && len(p) > 0 {
		c.net.corruptions.Add(1)
		// Copy before flipping: the caller owns p and may reuse it.
		damaged := make([]byte, len(p))
		copy(damaged, p)
		damaged[c.net.corruptIndex(len(p))] ^= 0x20
		return c.Conn.Write(damaged)
	}
	return c.Conn.Write(p)
}
