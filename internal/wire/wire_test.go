package wire

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func quietServer() *Server {
	return NewServer(WithServerLog(func(string, ...any) {}))
}

// echoHandler returns the request body with the op name prepended.
func echoHandler() Handler {
	return HandlerFunc(func(_ context.Context, _ string, req *Request) *Response {
		body := append([]byte(req.Op+":"), req.Body...)
		return &Response{Status: StatusOK, Body: body}
	})
}

func startServer(t *testing.T, endpoint string, services map[string]Handler) (*Server, string) {
	t.Helper()
	s := quietServer()
	for name, h := range services {
		if err := s.Register(name, h); err != nil {
			t.Fatal(err)
		}
	}
	bound, err := s.ListenAndServe(endpoint)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, bound
}

func TestCallOverBothTransports(t *testing.T) {
	for _, endpoint := range []string{"tcp:127.0.0.1:0", "loop:call-test"} {
		t.Run(endpoint, func(t *testing.T) {
			_, bound := startServer(t, endpoint, map[string]Handler{"echo": echoHandler()})
			c, err := Dial(bound)
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			body, err := c.Call(context.Background(), &Request{Service: "echo", Op: "Ping", Body: []byte("hello")})
			if err != nil {
				t.Fatal(err)
			}
			if string(body) != "Ping:hello" {
				t.Fatalf("body = %q", body)
			}
		})
	}
}

func TestCallUnknownService(t *testing.T) {
	_, bound := startServer(t, "loop:unknown-svc", map[string]Handler{"echo": echoHandler()})
	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call(context.Background(), &Request{Service: "nope", Op: "X"})
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != StatusNoService {
		t.Fatalf("err = %v, want StatusNoService", err)
	}
}

func TestCallAppError(t *testing.T) {
	h := HandlerFunc(func(_ context.Context, _ string, _ *Request) *Response {
		return &Response{Status: StatusAppError, ErrMsg: "car not available"}
	})
	_, bound := startServer(t, "loop:app-err", map[string]Handler{"svc": h})
	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, err = c.Call(context.Background(), &Request{Service: "svc", Op: "Book"})
	var re *RemoteError
	if !errors.As(err, &re) || re.Status != StatusAppError || !strings.Contains(re.Msg, "car not available") {
		t.Fatalf("err = %v", err)
	}
}

func TestConcurrentCallsMultiplex(t *testing.T) {
	// Handlers sleep inversely to their index; responses must still be
	// correlated correctly over the single shared connection.
	h := HandlerFunc(func(_ context.Context, _ string, req *Request) *Response {
		if len(req.Body) > 0 && req.Body[0]%2 == 0 {
			time.Sleep(2 * time.Millisecond)
		}
		return &Response{Status: StatusOK, Body: req.Body}
	})
	_, bound := startServer(t, "loop:mux", map[string]Handler{"svc": h})
	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 64
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := []byte{byte(i)}
			got, err := c.Call(context.Background(), &Request{Service: "svc", Op: "Echo", Body: want})
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(got, want) {
				errs[i] = fmt.Errorf("got %v, want %v", got, want)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
}

func TestCallContextCancel(t *testing.T) {
	block := make(chan struct{})
	h := HandlerFunc(func(_ context.Context, _ string, _ *Request) *Response {
		<-block
		return &Response{Status: StatusOK}
	})
	_, bound := startServer(t, "loop:cancel", map[string]Handler{"svc": h})
	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defer close(block)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err = c.Call(ctx, &Request{Service: "svc", Op: "Slow"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestServerCloseFailsInFlightCalls(t *testing.T) {
	started := make(chan struct{}, 1)
	block := make(chan struct{})
	h := HandlerFunc(func(_ context.Context, _ string, _ *Request) *Response {
		started <- struct{}{}
		<-block
		return &Response{Status: StatusOK}
	})
	srv, bound := startServer(t, "loop:srv-close", map[string]Handler{"svc": h})
	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), &Request{Service: "svc", Op: "Slow"})
		done <- err
	}()
	<-started
	close(block) // let the handler finish so server Close can drain
	_ = srv.Close()
	err = <-done
	// Depending on timing the call either completed before the close or
	// failed with a closed-client error; it must not hang or panic.
	if err != nil && !errors.Is(err, ErrClientClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestClientCloseFailsPendingCalls(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	h := HandlerFunc(func(_ context.Context, _ string, _ *Request) *Response {
		<-block
		return &Response{Status: StatusOK}
	})
	_, bound := startServer(t, "loop:cli-close", map[string]Handler{"svc": h})
	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(context.Background(), &Request{Service: "svc", Op: "Slow"})
		done <- err
	}()
	time.Sleep(5 * time.Millisecond) // let the call get pending
	_ = c.Close()
	if err := <-done; !errors.Is(err, ErrClientClosed) {
		t.Fatalf("err = %v, want ErrClientClosed", err)
	}
	// Calls after Close fail immediately.
	if _, err := c.Call(context.Background(), &Request{Service: "svc", Op: "X"}); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("post-close err = %v", err)
	}
}

func TestRegisterErrors(t *testing.T) {
	s := quietServer()
	defer s.Close()
	if err := s.Register("a", echoHandler()); err != nil {
		t.Fatal(err)
	}
	if err := s.Register("a", echoHandler()); !errors.Is(err, ErrServiceExists) {
		t.Fatalf("dup register err = %v", err)
	}
	if err := s.Register("", echoHandler()); err == nil {
		t.Fatal("empty name must fail")
	}
	if err := s.Register("b", nil); err == nil {
		t.Fatal("nil handler must fail")
	}
	s.Unregister("a")
	if err := s.Register("a", echoHandler()); err != nil {
		t.Fatalf("re-register after Unregister: %v", err)
	}
	names := s.ServiceNames()
	if len(names) != 1 || names[0] != "a" {
		t.Fatalf("ServiceNames = %v", names)
	}
}

func TestLoopbackNameCollision(t *testing.T) {
	ln, err := Listen("loop:collide")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := Listen("loop:collide"); !errors.Is(err, ErrLoopInUse) {
		t.Fatalf("err = %v, want ErrLoopInUse", err)
	}
}

func TestDialUnknownLoopback(t *testing.T) {
	if _, err := Dial("loop:ghost-endpoint"); !errors.Is(err, ErrLoopUnknown) {
		t.Fatalf("err = %v, want ErrLoopUnknown", err)
	}
}

func TestBadEndpoints(t *testing.T) {
	for _, ep := range []string{"", "tcp", ":x", "tcp:", "udp:127.0.0.1:1"} {
		if _, err := Listen(ep); err == nil {
			t.Fatalf("Listen(%q) succeeded", ep)
		}
		if _, err := DialConn(ep); err == nil {
			t.Fatalf("DialConn(%q) succeeded", ep)
		}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := frame{ftype: frameRequest, id: 42, payload: []byte("payload")}
	if err := writeFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := readFrame(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if out.ftype != in.ftype || out.id != in.id || !bytes.Equal(out.payload, in.payload) {
		t.Fatalf("round trip: %+v vs %+v", out, in)
	}
}

func TestFrameErrors(t *testing.T) {
	t.Run("oversize write", func(t *testing.T) {
		var buf bytes.Buffer
		err := writeFrame(&buf, frame{ftype: frameRequest, payload: make([]byte, MaxFramePayload+1)})
		if !errors.Is(err, ErrFrameTooLarge) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad magic", func(t *testing.T) {
		data := make([]byte, frameHeaderLen)
		copy(data, "XX")
		if _, err := readFrame(bytes.NewReader(data)); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		data := make([]byte, frameHeaderLen)
		copy(data, "CW")
		data[2] = 99
		data[3] = frameRequest
		if _, err := readFrame(bytes.NewReader(data)); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("bad type", func(t *testing.T) {
		data := make([]byte, frameHeaderLen)
		copy(data, "CW")
		data[2] = protoVersion
		data[3] = 7
		if _, err := readFrame(bytes.NewReader(data)); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("err = %v", err)
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		var buf bytes.Buffer
		if err := writeFrame(&buf, frame{ftype: frameRequest, id: 1, payload: []byte("abcdef")}); err != nil {
			t.Fatal(err)
		}
		data := buf.Bytes()[:buf.Len()-2]
		if _, err := readFrame(bytes.NewReader(data)); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestRequestResponseCodecs(t *testing.T) {
	req := &Request{Service: "CarRentalService", Op: "SelectCar", Body: []byte{1, 2, 3}}
	got, err := decodeRequest(encodeRequest(req))
	if err != nil {
		t.Fatal(err)
	}
	if got.Service != req.Service || got.Op != req.Op || !bytes.Equal(got.Body, req.Body) {
		t.Fatalf("request round trip: %+v", got)
	}
	resp := &Response{Status: StatusProtocol, ErrMsg: "illegal op", Body: []byte("x"), RetryAfter: 40 * time.Millisecond}
	gotR, err := decodeResponse(protoVersion, encodeResponse(resp))
	if err != nil {
		t.Fatal(err)
	}
	if gotR.Status != resp.Status || gotR.ErrMsg != resp.ErrMsg || !bytes.Equal(gotR.Body, resp.Body) || gotR.RetryAfter != resp.RetryAfter {
		t.Fatalf("response round trip: %+v", gotR)
	}
	// A v1 response payload has no retry-after field.
	v1 := append([]byte{byte(StatusOK)}, appendString(nil, "msg")...)
	v1 = append(v1, 'b')
	gotV1, err := decodeResponse(1, v1)
	if err != nil {
		t.Fatal(err)
	}
	if gotV1.Status != StatusOK || gotV1.ErrMsg != "msg" || string(gotV1.Body) != "b" || gotV1.RetryAfter != 0 {
		t.Fatalf("v1 response round trip: %+v", gotV1)
	}
	// Malformed inputs.
	if _, err := decodeRequest(nil); err == nil {
		t.Fatal("decodeRequest(nil) must fail")
	}
	if _, err := decodeResponse(protoVersion, nil); err == nil {
		t.Fatal("decodeResponse(nil) must fail")
	}
	if _, err := decodeResponse(protoVersion, []byte{99, 0}); err == nil {
		t.Fatal("bad status must fail")
	}
}

func TestPoolReusesClients(t *testing.T) {
	_, bound := startServer(t, "loop:pool", map[string]Handler{"echo": echoHandler()})
	p := NewPool()
	defer p.Close()
	c1, err := p.Get(context.Background(), bound)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p.Get(context.Background(), bound)
	if err != nil {
		t.Fatal(err)
	}
	if c1 != c2 {
		t.Fatal("pool must reuse the client")
	}
	// A broken client is replaced on the next Get.
	_ = c1.Close()
	c3, err := p.Get(context.Background(), bound)
	if err != nil {
		t.Fatal(err)
	}
	if c3 == c1 {
		t.Fatal("pool must replace a closed client")
	}
	if _, err := c3.Call(context.Background(), &Request{Service: "echo", Op: "Hi"}); err != nil {
		t.Fatal(err)
	}
	p.Drop(bound)
	if _, err := c3.Call(context.Background(), &Request{Service: "echo", Op: "Hi"}); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("dropped client err = %v", err)
	}
}

func TestPoolClosed(t *testing.T) {
	p := NewPool()
	_ = p.Close()
	if _, err := p.Get(context.Background(), "loop:whatever"); !errors.Is(err, ErrClientClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestGroupBroadcast(t *testing.T) {
	var hits atomic.Int32
	mk := func(name string) string {
		h := HandlerFunc(func(_ context.Context, _ string, req *Request) *Response {
			hits.Add(1)
			return &Response{Status: StatusOK, Body: []byte(name)}
		})
		_, bound := startServer(t, "loop:grp-"+name, map[string]Handler{"svc": h})
		return bound
	}
	eps := []string{mk("a"), mk("b"), mk("c")}

	p := NewPool()
	defer p.Close()
	g := NewGroup(p)
	for _, ep := range eps {
		g.Join(ep)
	}
	g.Join(eps[0]) // idempotent
	g.Join("loop:grp-missing")
	if g.Size() != 4 {
		t.Fatalf("Size = %d", g.Size())
	}

	results := g.Broadcast(context.Background(), &Request{Service: "svc", Op: "Ping"})
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	okCount, errCount := 0, 0
	for _, r := range results {
		if r.Err != nil {
			errCount++
		} else {
			okCount++
		}
	}
	if okCount != 3 || errCount != 1 {
		t.Fatalf("ok=%d err=%d", okCount, errCount)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("hits = %d", got)
	}

	g.Leave("loop:grp-missing")
	if g.Size() != 3 {
		t.Fatalf("Size after Leave = %d", g.Size())
	}
}

func TestGroupAnycast(t *testing.T) {
	h := HandlerFunc(func(_ context.Context, _ string, _ *Request) *Response {
		return &Response{Status: StatusOK, Body: []byte("pong")}
	})
	_, bound := startServer(t, "loop:any-ok", map[string]Handler{"svc": h})

	p := NewPool()
	defer p.Close()
	g := NewGroup(p)
	g.Join("loop:any-missing") // sorts before any-ok; must be skipped
	g.Join(bound)
	body, err := g.Anycast(context.Background(), &Request{Service: "svc", Op: "Ping"})
	if err != nil || string(body) != "pong" {
		t.Fatalf("Anycast = %q, %v", body, err)
	}

	empty := NewGroup(p)
	if _, err := empty.Anycast(context.Background(), &Request{Service: "svc", Op: "Ping"}); err == nil {
		t.Fatal("empty group Anycast must fail")
	}
}

func TestGarbageBytesToServer(t *testing.T) {
	_, bound := startServer(t, "loop:garbage", map[string]Handler{"echo": echoHandler()})
	conn, err := DialConn(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	rng := rand.New(rand.NewSource(1))
	junk := make([]byte, 64)
	rng.Read(junk)
	// The write may itself fail once the server rejects the stream and
	// closes the synchronous pipe; only the server's health matters here.
	_, _ = conn.Write(junk)
	// The server must drop the connection, not crash: a subsequent good
	// client still works.
	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(context.Background(), &Request{Service: "echo", Op: "Ok"}); err != nil {
		t.Fatal(err)
	}
}

func TestServeTwiceFails(t *testing.T) {
	s := quietServer()
	defer s.Close()
	if _, err := s.ListenAndServe("loop:serve-twice"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ListenAndServe("loop:serve-twice-b"); err == nil {
		t.Fatal("second Serve must fail")
	}
	if s.Endpoint() != "loop:serve-twice" {
		t.Fatalf("Endpoint = %q", s.Endpoint())
	}
}

// Property: request and response payload codecs round-trip arbitrary
// field contents.
func TestRequestCodecProperty(t *testing.T) {
	f := func(service, op string, body []byte) bool {
		if len(service) > maxNameLen || len(op) > maxNameLen {
			return true
		}
		req := &Request{Service: service, Op: op, Body: body}
		got, err := decodeRequest(encodeRequest(req))
		if err != nil {
			return false
		}
		return got.Service == service && got.Op == op && bytes.Equal(got.Body, body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestResponseCodecProperty(t *testing.T) {
	f := func(status uint8, msg string, body []byte, retryMillis uint16) bool {
		s := Status(status%8) + StatusOK
		resp := &Response{Status: s, ErrMsg: msg, Body: body, RetryAfter: time.Duration(retryMillis) * time.Millisecond}
		got, err := decodeResponse(protoVersion, encodeResponse(resp))
		if err != nil {
			return false
		}
		return got.Status == s && got.ErrMsg == msg && bytes.Equal(got.Body, body) && got.RetryAfter == resp.RetryAfter
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: frames of arbitrary payloads round-trip through the framing
// layer.
func TestFrameCodecProperty(t *testing.T) {
	f := func(ftype bool, id uint64, payload []byte) bool {
		ft := byte(frameRequest)
		if ftype {
			ft = frameResponse
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, frame{ftype: ft, id: id, payload: payload}); err != nil {
			return false
		}
		got, err := readFrame(&buf)
		if err != nil {
			return false
		}
		return got.ftype == ft && got.id == id && bytes.Equal(got.payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
