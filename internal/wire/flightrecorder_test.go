package wire

import (
	"context"
	"strings"
	"testing"
	"time"

	"cosm/internal/obs"
)

// TestSpansLinkAcrossTheWire: a traced pool call records a client span,
// the handler records a server span, and the server span's parent is
// the client span — the cross-process edge BuildSpanTree links on.
func TestSpansLinkAcrossTheWire(t *testing.T) {
	rec := obs.NewSpanRecorder(64)
	s := NewServer(WithServerLog(func(string, ...any) {}), WithServerRecorder(rec))
	if err := s.Register("svc", echoHandler()); err != nil {
		t.Fatal(err)
	}
	bound, err := s.ListenAndServe("loop:span-link")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	pool := NewPool(WithPoolRecorder(rec))
	defer pool.Close()
	root := obs.NewTrace()
	ctx := obs.WithTrace(context.Background(), root)
	if _, err := pool.Call(ctx, bound, &Request{Service: "svc", Op: "X"}); err != nil {
		t.Fatal(err)
	}

	// The server span is recorded asynchronously after the response.
	var client, server *obs.Span
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); time.Sleep(2 * time.Millisecond) {
		client, server = nil, nil
		for _, sp := range rec.Trace(root.ID) {
			sp := sp
			switch sp.Kind {
			case obs.SpanClient:
				client = &sp
			case obs.SpanServer:
				server = &sp
			}
		}
		if client != nil && server != nil {
			break
		}
	}
	if client == nil || server == nil {
		t.Fatalf("spans for trace %s = %+v", root.ID, rec.Trace(root.ID))
	}
	if client.Parent != root.Span {
		t.Fatalf("client span parent = %q, want root span %q", client.Parent, root.Span)
	}
	if server.Parent != client.ID {
		t.Fatalf("server span parent = %q, want client span %q", server.Parent, client.ID)
	}
	if client.Op != "svc/X" || client.Status != "ok" || server.Op != "svc/X" || server.Status != "ok" {
		t.Fatalf("span labels: client=%+v server=%+v", client, server)
	}
	if roots := obs.BuildSpanTree(rec.Trace(root.ID)); len(roots) != 1 || len(roots[0].Children) != 1 {
		t.Fatalf("span tree = %+v", roots)
	}

	// Untraced calls record nothing even with a recorder attached.
	if _, err := pool.Call(context.Background(), bound, &Request{Service: "svc", Op: "X"}); err != nil {
		t.Fatal(err)
	}
	if n := len(rec.Snapshot()); n != 2 {
		t.Fatalf("untraced call added spans: %d total", n)
	}
}

// TestV1PeerDegradesToSpanless extends the frame-version compat matrix:
// a v1 peer's frames carry no trace metadata, so its requests are
// served normally but record no server span — span-less entries, not
// errors.
func TestV1PeerDegradesToSpanless(t *testing.T) {
	rec := obs.NewSpanRecorder(64)
	s := NewServer(WithServerLog(func(string, ...any) {}), WithServerRecorder(rec))
	if err := s.Register("svc", echoHandler()); err != nil {
		t.Fatal(err)
	}
	bound, err := s.ListenAndServe("loop:span-v1")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	conn, err := DialConn(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A v1 frame: even with trace metadata set on the struct, the v1
	// encoding has nowhere to carry it (see TestFrameVersionTraceMatrix).
	req := frame{version: 1, ftype: frameRequest, id: 1, traceID: "t-v1", parentID: "s-v1",
		payload: encodeRequest(&Request{Service: "svc", Op: "X", Body: []byte("b")})}
	if err := writeFrame(conn, req); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ftype != frameResponse || resp.id != 1 {
		t.Fatalf("v1 response = %+v", resp)
	}
	time.Sleep(50 * time.Millisecond) // span recording is post-response
	if spans := rec.Snapshot(); len(spans) != 0 {
		t.Fatalf("v1 request recorded spans: %+v", spans)
	}
}

// TestSlowRequestWatchdog: a request over the threshold bumps the slow
// counter and emits one structured slow_request line with its trace.
func TestSlowRequestWatchdog(t *testing.T) {
	var buf syncBuffer
	reg := obs.NewRegistry()
	m := NewServerMetrics(reg)
	slow := HandlerFunc(func(context.Context, string, *Request) *Response {
		time.Sleep(5 * time.Millisecond)
		return &Response{Status: StatusOK}
	})
	s := NewServer(
		WithServerLogger(obs.NewLogger(&buf, "wiretest")),
		WithServerMetrics(m),
		WithSlowThreshold(time.Millisecond),
	)
	if err := s.Register("svc", slow); err != nil {
		t.Fatal(err)
	}
	bound, err := s.ListenAndServe("loop:slow-watchdog")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	root := obs.NewTrace()
	if _, err := c.Call(obs.WithTrace(context.Background(), root), &Request{Service: "svc", Op: "X"}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for m.slow.Value() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := m.slow.Value(); got != 1 {
		t.Fatalf("slow counter = %d, want 1", got)
	}
	for !strings.Contains(buf.String(), "event=slow_request") && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	line := buf.String()
	if !strings.Contains(line, "event=slow_request") || !strings.Contains(line, "trace="+root.ID) {
		t.Fatalf("slow_request line missing or untraced:\n%s", line)
	}
}
