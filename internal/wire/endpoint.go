// Package wire implements the communication level of the COSM prototype
// architecture (Fig. 6): a framed, correlated request/response RPC
// protocol over stream transports, plus broadcast groups.
//
// The paper's prototype used Sun RPC on a SPARC/AIX workstation cluster;
// this implementation substitutes a self-contained equivalent with the
// same call semantics — synchronous request/response with at-most-once
// execution per request — over two interchangeable transports: TCP
// ("tcp:host:port" endpoints) and an in-process loopback network
// ("loop:name" endpoints) that removes the kernel from micro-benchmarks
// and makes multi-node tests hermetic.
package wire

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
)

// Errors reported by endpoint handling.
var (
	ErrBadEndpoint = errors.New("wire: malformed endpoint")
	ErrLoopInUse   = errors.New("wire: loopback name already in use")
	ErrLoopUnknown = errors.New("wire: no such loopback listener")
)

// Listener accepts transport connections for a server.
type Listener interface {
	Accept() (net.Conn, error)
	Close() error
	// Endpoint returns the dialable endpoint of this listener.
	Endpoint() string
}

// Listen creates a listener for an endpoint:
//
//	"tcp:host:port" — a TCP listener (use "tcp:127.0.0.1:0" for an
//	                  ephemeral port; Endpoint reports the bound one);
//	"loop:name"     — an in-process loopback listener.
func Listen(endpoint string) (Listener, error) {
	scheme, rest, err := splitEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	switch scheme {
	case "tcp":
		ln, err := net.Listen("tcp", rest)
		if err != nil {
			return nil, fmt.Errorf("wire: listen %s: %w", endpoint, err)
		}
		return &tcpListener{Listener: ln}, nil
	case "loop":
		return defaultLoopNet.listen(rest)
	default:
		return nil, fmt.Errorf("%w: unknown scheme %q", ErrBadEndpoint, scheme)
	}
}

// DialConn opens a raw transport connection to an endpoint with no
// deadline of its own (the OS connect timeout applies). Most callers
// want Dial (which returns an RPC *Client) or DialConnContext instead.
func DialConn(endpoint string) (net.Conn, error) {
	return DialConnContext(context.Background(), endpoint)
}

// DialConnContext opens a raw transport connection to an endpoint,
// honouring ctx cancellation and deadline while connecting: a dial to a
// black-holed address gives up when ctx does instead of hanging for the
// OS TCP timeout.
func DialConnContext(ctx context.Context, endpoint string) (net.Conn, error) {
	scheme, rest, err := splitEndpoint(endpoint)
	if err != nil {
		return nil, err
	}
	switch scheme {
	case "tcp":
		var d net.Dialer
		c, err := d.DialContext(ctx, "tcp", rest)
		if err != nil {
			return nil, fmt.Errorf("wire: dial %s: %w", endpoint, err)
		}
		return c, nil
	case "loop":
		return defaultLoopNet.dial(ctx, rest)
	default:
		return nil, fmt.Errorf("%w: unknown scheme %q", ErrBadEndpoint, scheme)
	}
}

func splitEndpoint(endpoint string) (scheme, rest string, err error) {
	i := strings.IndexByte(endpoint, ':')
	if i <= 0 || i == len(endpoint)-1 {
		return "", "", fmt.Errorf("%w: %q", ErrBadEndpoint, endpoint)
	}
	return endpoint[:i], endpoint[i+1:], nil
}

type tcpListener struct {
	net.Listener
}

func (l *tcpListener) Endpoint() string { return "tcp:" + l.Addr().String() }

// loopNet is an in-process transport namespace: named listeners
// connected by net.Pipe.
type loopNet struct {
	mu        sync.Mutex
	listeners map[string]*loopListener
}

var defaultLoopNet = &loopNet{listeners: map[string]*loopListener{}}

func (n *loopNet) listen(name string) (*loopListener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if name == "" {
		return nil, fmt.Errorf("%w: empty loopback name", ErrBadEndpoint)
	}
	if _, exists := n.listeners[name]; exists {
		return nil, fmt.Errorf("%w: %q", ErrLoopInUse, name)
	}
	l := &loopListener{
		net:     n,
		name:    name,
		backlog: make(chan net.Conn, 16),
		closed:  make(chan struct{}),
	}
	n.listeners[name] = l
	return l, nil
}

func (n *loopNet) dial(ctx context.Context, name string) (net.Conn, error) {
	n.mu.Lock()
	l, ok := n.listeners[name]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrLoopUnknown, name)
	}
	client, server := net.Pipe()
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.closed:
		_ = client.Close()
		_ = server.Close()
		return nil, fmt.Errorf("%w: %q", ErrLoopUnknown, name)
	case <-ctx.Done():
		_ = client.Close()
		_ = server.Close()
		return nil, fmt.Errorf("wire: dial loop:%s: %w", name, ctx.Err())
	}
}

type loopListener struct {
	net     *loopNet
	name    string
	backlog chan net.Conn
	closed  chan struct{}

	closeOnce sync.Once
}

func (l *loopListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.closed:
		return nil, net.ErrClosed
	}
}

func (l *loopListener) Close() error {
	l.closeOnce.Do(func() {
		l.net.mu.Lock()
		delete(l.net.listeners, l.name)
		l.net.mu.Unlock()
		close(l.closed)
	})
	return nil
}

func (l *loopListener) Endpoint() string { return "loop:" + l.name }
