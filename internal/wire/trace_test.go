package wire

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"cosm/internal/obs"
)

func TestFrameMetaCodec(t *testing.T) {
	// Untraced requests collapse to a single zero byte.
	if got := encodeFrameMeta("", ""); !bytes.Equal(got, []byte{0}) {
		t.Fatalf("empty meta = %v", got)
	}
	// Oversized IDs are dropped, not truncated into garbage.
	if got := encodeFrameMeta(strings.Repeat("x", 200), "p"); !bytes.Equal(got, []byte{0}) {
		t.Fatalf("oversized meta = %v", got)
	}

	meta := encodeFrameMeta("trace-1", "span-1")
	if int(meta[0]) != len(meta)-1 {
		t.Fatalf("section length byte = %d, body = %d", meta[0], len(meta)-1)
	}
	traceID, parentID, err := decodeFrameMeta(meta[1:])
	if err != nil || traceID != "trace-1" || parentID != "span-1" {
		t.Fatalf("decode = %q %q %v", traceID, parentID, err)
	}

	// Trailing bytes are tolerated for forward compatibility...
	withTrailer := append(append([]byte{}, meta[1:]...), 0xAA, 0xBB)
	if traceID, _, err = decodeFrameMeta(withTrailer); err != nil || traceID != "trace-1" {
		t.Fatalf("trailered decode = %q %v", traceID, err)
	}
	// ...but truncation inside an ID is a framing error.
	if _, _, err = decodeFrameMeta(meta[1 : len(meta)-3]); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("truncated decode err = %v", err)
	}
	if _, _, err = decodeFrameMeta([]byte{5}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("short decode err = %v", err)
	}
}

// The version/trace compatibility matrix: trace metadata survives a v2
// round trip, is absent-but-harmless on untraced v2 frames, and v1
// frames — which have no extension section at all — read back cleanly.
func TestFrameVersionTraceMatrix(t *testing.T) {
	cases := []struct {
		name       string
		in         frame
		wantTrace  string
		wantParent string
	}{
		{"v2 traced", frame{ftype: frameRequest, id: 1, ttl: 50, traceID: "t1", parentID: "s1", payload: []byte("p")}, "t1", "s1"},
		{"v2 untraced", frame{ftype: frameRequest, id: 2, ttl: 50, payload: []byte("p")}, "", ""},
		{"v1 ignores trace", frame{version: 1, ftype: frameRequest, id: 3, traceID: "t1", parentID: "s1", payload: []byte("p")}, "", ""},
		{"v1 plain", frame{version: 1, ftype: frameRequest, id: 4, payload: []byte("p")}, "", ""},
		{"v2 response no meta", frame{ftype: frameResponse, id: 5, traceID: "t1", payload: []byte("p")}, "", ""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := writeFrame(&buf, c.in); err != nil {
				t.Fatal(err)
			}
			got, err := readFrame(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if got.traceID != c.wantTrace || got.parentID != c.wantParent {
				t.Fatalf("trace = %q/%q, want %q/%q", got.traceID, got.parentID, c.wantTrace, c.wantParent)
			}
			if got.id != c.in.id || !bytes.Equal(got.payload, c.in.payload) {
				t.Fatalf("round trip = %+v", got)
			}
			if buf.Len() != 0 {
				t.Fatalf("%d bytes left unread", buf.Len())
			}
		})
	}
}

// A trace in the caller's context crosses the wire and surfaces as a
// child span in the handler's context: same trace ID, new span,
// parented at the caller's span.
func TestTracePropagatesToHandler(t *testing.T) {
	seen := make(chan obs.Trace, 1)
	h := HandlerFunc(func(ctx context.Context, _ string, _ *Request) *Response {
		seen <- obs.TraceFrom(ctx)
		return &Response{Status: StatusOK}
	})
	_, bound := startServer(t, "loop:trace-prop", map[string]Handler{"svc": h})
	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	root := obs.NewTrace()
	ctx := obs.WithTrace(context.Background(), root)
	if _, err := c.Call(ctx, &Request{Service: "svc", Op: "X"}); err != nil {
		t.Fatal(err)
	}
	got := <-seen
	if got.ID != root.ID {
		t.Fatalf("handler trace ID = %q, want %q", got.ID, root.ID)
	}
	if got.Parent != root.Span || got.Span == root.Span || got.Span == "" {
		t.Fatalf("handler span = %+v, want child of %+v", got, root)
	}

	// An untraced call leaves the handler context untraced.
	if _, err := c.Call(context.Background(), &Request{Service: "svc", Op: "X"}); err != nil {
		t.Fatal(err)
	}
	if got := <-seen; got.Valid() {
		t.Fatalf("untraced call produced trace %+v", got)
	}
}

// Error responses generated before dispatch echo the trace ID so a
// failing caller can name the trace without any server-side log access.
func TestErrorResponseEchoesTrace(t *testing.T) {
	_, bound := startServer(t, "loop:trace-echo", map[string]Handler{"svc": echoHandler()})
	conn, err := DialConn(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	req := encodeRequest(&Request{Service: "svc", Op: "X"})
	// ttl=1µs is expired on arrival → StatusDeadlineExpired with echo.
	if err := writeFrame(conn, frame{ftype: frameRequest, id: 3, ttl: 1, traceID: "feedface", parentID: "beef", payload: req}); err != nil {
		t.Fatal(err)
	}
	f, err := readFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := decodeResponse(f.version, f.payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusDeadlineExpired || !strings.Contains(resp.ErrMsg, "[trace feedface]") {
		t.Fatalf("resp = %+v, want deadline-expired with trace echo", resp)
	}
}

// syncBuffer is a mutex-guarded buffer: the access log line is written
// by the server's dispatch goroutine, which may still be running when
// the client call returns.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitFor polls until the buffer contains want or the deadline passes.
func (s *syncBuffer) waitFor(want string) bool {
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); time.Sleep(2 * time.Millisecond) {
		if strings.Contains(s.String(), want) {
			return true
		}
	}
	return false
}

// The structured server logger emits one event=rpc access line per
// request, tagged with the propagated trace.
func TestServerAccessLog(t *testing.T) {
	var buf syncBuffer
	logger := obs.NewLogger(&buf, "testsrv")
	s := NewServer(WithServerLogger(logger))
	if err := s.Register("svc", echoHandler()); err != nil {
		t.Fatal(err)
	}
	bound, err := s.ListenAndServe("loop:trace-accesslog")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c, err := Dial(bound)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	root := obs.NewTrace()
	ctx := obs.WithTrace(context.Background(), root)
	if _, err := c.Call(ctx, &Request{Service: "svc", Op: "Ping"}); err != nil {
		t.Fatal(err)
	}
	if !buf.waitFor("event=rpc") {
		t.Fatalf("no rpc access line: %s", buf.String())
	}
	out := buf.String()
	for _, want := range []string{"op=svc/Ping", "status=ok", "trace=" + root.ID} {
		if !strings.Contains(out, want) {
			t.Errorf("access log missing %q: %s", want, out)
		}
	}
}

// Client and server metric families record calls, statuses, latency
// and connection reuse across a pool-driven exchange.
func TestClientServerMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	sm := NewServerMetrics(reg)
	s := NewServer(WithServerLog(func(string, ...any) {}), WithServerMetrics(sm))
	if err := s.Register("svc", echoHandler()); err != nil {
		t.Fatal(err)
	}
	bound, err := s.ListenAndServe("loop:metrics-e2e")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	cm := NewClientMetrics(reg)
	pool := NewPool(WithPoolMetrics(cm))
	defer pool.Close()
	for i := 0; i < 3; i++ {
		if _, err := pool.Call(context.Background(), bound, &Request{Service: "svc", Op: "Ping"}); err != nil {
			t.Fatal(err)
		}
	}
	// A remote error still counts as an attempt, under its status label.
	if _, err := pool.Call(context.Background(), bound, &Request{Service: "ghost", Op: "X"}); err == nil {
		t.Fatal("ghost service call succeeded")
	}

	snap := cm.Snapshot()
	if snap.Calls["ok"] != 3 || snap.Calls["no_such_service"] != 1 {
		t.Fatalf("client calls = %v", snap.Calls)
	}
	lat := snap.Latency[bound]
	if lat.Count != 4 {
		t.Fatalf("latency count = %d, want 4", lat.Count)
	}
	// One dial, the rest reused.
	var prom strings.Builder
	reg.WritePrometheus(&prom)
	for _, want := range []string{
		"cosm_client_dials_total 1",
		"cosm_client_conn_reuse_total 3",
		`cosm_server_responses_total{status="ok"} 3`,
		`cosm_server_responses_total{status="no_such_service"} 1`,
		`cosm_server_request_seconds_count{op="svc/Ping"} 3`,
		"cosm_server_inflight_requests 0",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("exposition missing %q", want)
		}
	}

	// Nil metrics wrappers are inert end to end.
	var nilC *ClientMetrics
	nilC.observeAttempt("x", time.Second, nil)
	nilC.shed()
	if s := nilC.Snapshot(); s.Calls != nil || s.Sheds != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	var nilS *ServerMetrics
	nilS.observeHandled("x", time.Second)
	nilS.inflightAdd(1)
}

// Breaker transitions surface through the notify hook:
// closed → open → half-open → closed.
func TestBreakerTransitionNotify(t *testing.T) {
	var got []BreakerState
	b := newBreaker(BreakerPolicy{Threshold: 2, Cooldown: 10 * time.Millisecond})
	b.onTransition = func(to BreakerState) { got = append(got, to) }

	now := time.Now()
	b.failure(now)
	b.failure(now) // trips open
	if err := b.allow(now.Add(20 * time.Millisecond)); err != nil {
		t.Fatalf("probe not admitted after cooldown: %v", err)
	}
	b.success() // half-open probe succeeds → closed
	want := []BreakerState{BreakerOpen, BreakerHalfOpen, BreakerClosed}
	if len(got) != len(want) {
		t.Fatalf("transitions = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("transitions = %v, want %v", got, want)
		}
	}
}
