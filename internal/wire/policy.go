package wire

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// CallPolicy bounds one logical RPC performed through a Pool: how long
// each attempt may take, how many attempts are made, and how attempts
// are spaced. The policy retries only *connection-class* failures
// (dial failures, broken connections, per-attempt timeouts). Remote
// application errors are never retried: the request reached a handler
// that may have had side effects (see Transient). Note that a
// per-attempt *timeout* is retried even though the attempt may have
// executed server-side with only the response late — which is why
// Pool.Call is reserved for idempotent operations.
type CallPolicy struct {
	// MaxAttempts is the total number of attempts (first try included).
	// Values below 1 mean 1: a single attempt, no retries.
	MaxAttempts int
	// AttemptTimeout bounds each individual attempt; 0 leaves attempts
	// bounded only by the caller's context.
	AttemptTimeout time.Duration
	// BackoffBase is the delay before the first retry; each further
	// retry doubles it, capped at BackoffMax.
	BackoffBase time.Duration
	// BackoffMax caps the exponential growth (0 means no cap).
	BackoffMax time.Duration
	// Jitter is the fraction of each backoff delay that is randomised
	// away (0 disables jitter, 0.5 subtracts up to half the delay).
	// Jitter desynchronises retry storms from many clients hitting the
	// same recovering endpoint.
	Jitter float64
}

// DefaultCallPolicy returns the policy a fresh Pool uses: three
// attempts with short exponential backoff, each attempt bounded so one
// black-holed endpoint cannot absorb a caller for long.
func DefaultCallPolicy() CallPolicy {
	return CallPolicy{
		MaxAttempts:    3,
		AttemptTimeout: 5 * time.Second,
		BackoffBase:    20 * time.Millisecond,
		BackoffMax:     500 * time.Millisecond,
		Jitter:         0.5,
	}
}

// attempts normalises MaxAttempts.
func (p CallPolicy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// backoff returns the delay before retry number retry (1-based).
func (p CallPolicy) backoff(retry int) time.Duration {
	d := p.BackoffBase
	if d <= 0 {
		return 0
	}
	for i := 1; i < retry; i++ {
		d *= 2
		if p.BackoffMax > 0 && d >= p.BackoffMax {
			d = p.BackoffMax
			break
		}
	}
	if p.BackoffMax > 0 && d > p.BackoffMax {
		d = p.BackoffMax
	}
	if p.Jitter > 0 {
		cut := int64(float64(d) * p.Jitter)
		if cut > 0 {
			d -= time.Duration(rand.Int63n(cut + 1))
		}
	}
	return d
}

// attemptCtx derives the per-attempt context.
func (p CallPolicy) attemptCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if p.AttemptTimeout <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, p.AttemptTimeout)
}

// Transient reports whether err is a connection-class failure that a
// fresh attempt (possibly on a fresh connection) may repair:
//
//   - dial failures and broken/closed connections never reached a
//     handler — always safe to retry;
//   - per-attempt timeouts (context.DeadlineExceeded) are classified
//     transient too, but with a caveat: the request may have been fully
//     written and executed server-side with only the response late, so
//     a retry can execute the operation twice. This is why Pool.Call —
//     the only place this classification drives retries — is reserved
//     for idempotent operations (Describe, Ping, binding setup);
//   - StatusBadRequest remote errors were rejected by the server
//     *before* dispatch (the body could not be decoded), so the
//     operation did not run — safe to retry, and exactly what an
//     in-flight corruption looks like from the caller;
//   - StatusOverloaded responses were shed *before* dispatch under
//     admission control (or during a drain): the handler provably did
//     not run, so retrying — after the server's retry-after hint — is
//     always safe;
//   - StatusDeadlineExpired responses were rejected *before* dispatch
//     because the propagated deadline had passed: the handler did not
//     run, and a fresh attempt (with whatever budget the caller has
//     left) is safe;
//   - all other remote errors (application errors, protocol
//     violations, unknown service/operation) prove the request was
//     dispatched or deterministically rejected — retrying is unsafe or
//     pointless and callers must handle them;
//   - context.Canceled means the caller gave up — never retried.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) {
		return false
	}
	var re *RemoteError
	if errors.As(err, &re) {
		switch re.Status {
		case StatusBadRequest, StatusOverloaded, StatusDeadlineExpired:
			return true
		}
		return false
	}
	return !errors.Is(err, ErrRemote)
}
