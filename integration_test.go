package bench

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"cosm/internal/browser"
	"cosm/internal/carrental"
	"cosm/internal/cosm"
	"cosm/internal/genclient"
	"cosm/internal/naming"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/stub"
	"cosm/internal/trader"
	"cosm/internal/typemgr"
	"cosm/internal/wire"
	"cosm/internal/xcode"
)

// infraNode bundles the infrastructure services of Fig. 6 on one node
// over real TCP.
type infraNode struct {
	node   *cosm.Node
	trader *trader.Trader
	names  *naming.NameClient
	brw    *browser.Client
	trd    *trader.Client
}

func startInfra(t *testing.T, traderID string) *infraNode {
	t.Helper()
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))

	nameSvc, err := naming.NewService(naming.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	browserSvc, err := browser.NewService(browser.NewDirectory())
	if err != nil {
		t.Fatal(err)
	}
	repo := typemgr.NewRepo()
	carType, err := typemgr.FromSID(sidl.CarRentalSID())
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Define(carType); err != nil {
		t.Fatal(err)
	}
	tr := trader.New(traderID, repo)
	traderSvc, err := trader.NewService(tr)
	if err != nil {
		t.Fatal(err)
	}
	groupSvc, err := naming.NewGroupService(naming.NewGroups())
	if err != nil {
		t.Fatal(err)
	}
	for name, svc := range map[string]*cosm.Service{
		naming.ServiceName:      nameSvc,
		naming.GroupServiceName: groupSvc,
		browser.ServiceName:     browserSvc,
		trader.ServiceName:      traderSvc,
	} {
		if err := node.Host(name, svc); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := node.ListenAndServe("tcp:127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })

	ctx := context.Background()
	in := &infraNode{node: node, trader: tr}
	if in.names, err = naming.DialNameServer(ctx, node.Pool(), node.MustRefFor(naming.ServiceName)); err != nil {
		t.Fatal(err)
	}
	if in.brw, err = browser.DialBrowser(ctx, node.Pool(), node.MustRefFor(browser.ServiceName)); err != nil {
		t.Fatal(err)
	}
	if in.trd, err = trader.DialTrader(ctx, node.Pool(), node.MustRefFor(trader.ServiceName)); err != nil {
		t.Fatal(err)
	}
	return in
}

// liveNodes tracks provider nodes by endpoint so failure tests can
// crash one deliberately (see failure_test.go).
var (
	nodesMu   sync.Mutex
	liveNodes = map[string]*cosm.Node{}
)

// startProvider hosts a car rental company over TCP and publishes it.
func startProvider(t *testing.T, in *infraNode, name string, tariff carrental.Tariff) ref.ServiceRef {
	t.Helper()
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	svc, impl, err := carrental.New(carrental.WithTariff(tariff))
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Host(name, svc); err != nil {
		t.Fatal(err)
	}
	if _, err := node.ListenAndServe("tcp:127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	nodesMu.Lock()
	liveNodes[node.Endpoint()] = node
	nodesMu.Unlock()
	t.Cleanup(func() {
		nodesMu.Lock()
		delete(liveNodes, node.Endpoint())
		nodesMu.Unlock()
		_ = node.Close()
	})

	sid := impl.SID().Clone()
	sid.ServiceName = name
	if fiat, ok := tariff["FIAT_Uno"]; ok {
		for i, p := range sid.Trader.Properties {
			if p.Name == "ChargePerDay" {
				sid.Trader.Properties[i].Value = sidl.FloatLit(fiat)
			}
		}
	}
	self := node.MustRefFor(name)
	if _, err := carrental.Publish(context.Background(), sid, self, in.brw, in.trd); err != nil {
		t.Fatal(err)
	}
	return self
}

// TestIntegrationFullMarket drives the complete COSM scenario over TCP:
// infrastructure node, two providers, discovery via both browser and
// trader, generic-client booking with FSM enforcement, and name-server
// bootstrap.
func TestIntegrationFullMarket(t *testing.T) {
	ctx := context.Background()
	in := startInfra(t, "it-hamburg")

	alster := startProvider(t, in, "AlsterCars", carrental.Tariff{"FIAT_Uno": 85, "AUDI": 120})
	elbe := startProvider(t, in, "ElbeRental", carrental.Tariff{"FIAT_Uno": 78})

	// Bootstrap via the name server.
	if err := in.names.Register(ctx, "market/browser", in.node.MustRefFor(browser.ServiceName)); err != nil {
		t.Fatal(err)
	}
	browserRef, err := in.names.Resolve(ctx, "market/browser")
	if err != nil {
		t.Fatal(err)
	}

	// Mediation path: both providers browsable.
	gc := genclient.New(wire.NewPool())
	entries, err := gc.Browse(ctx, browserRef, "rent")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("browse found %d entries, want 2", len(entries))
	}

	// Trading path: constrained, policy-ordered import picks the
	// cheaper provider.
	offer, err := in.trd.ImportOneWith(ctx, "CarRentalService",
		trader.Where("CarModel == FIAT_Uno && ChargePerDay < 90"),
		trader.OrderBy("min:ChargePerDay"))
	if err != nil {
		t.Fatal(err)
	}
	if offer.Ref != elbe {
		t.Fatalf("best offer = %v, want %v", offer.Ref, elbe)
	}
	_ = alster

	// Bind and complete the paper's booking protocol.
	binding, err := gc.Bind(ctx, offer.Ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := binding.Invoke(ctx, "Commit"); !errors.Is(err, genclient.ErrProtocol) {
		t.Fatalf("premature Commit err = %v", err)
	}
	if _, err := binding.InvokeForm(ctx, "SelectCar", map[string]string{
		"SelectCar.selection.model": "FIAT_Uno",
		"SelectCar.selection.days":  "3",
	}); err != nil {
		t.Fatal(err)
	}
	res, err := binding.Invoke(ctx, "Commit")
	if err != nil {
		t.Fatal(err)
	}
	conf, err := res.Value.Field("confirmation")
	if err != nil || !strings.Contains(conf.Str, "FIAT_Uno-3d") {
		t.Fatalf("confirmation = %v, %v", conf, err)
	}
}

// TestIntegrationFederationOverTCP federates two full infrastructure
// domains over TCP and imports across them.
func TestIntegrationFederationOverTCP(t *testing.T) {
	ctx := context.Background()
	hamburg := startInfra(t, "it-fed-hamburg")
	munich := startInfra(t, "it-fed-munich")

	remoteMunich, err := trader.DialTrader(ctx, hamburg.node.Pool(), munich.node.MustRefFor(trader.ServiceName))
	if err != nil {
		t.Fatal(err)
	}
	if err := hamburg.trader.AddLink("munich", remoteMunich); err != nil {
		t.Fatal(err)
	}

	isar := startProvider(t, munich, "IsarCars", carrental.Tariff{"FIAT_Uno": 66})

	// Local import at Hamburg sees nothing; hop 1 reaches Munich.
	offers, err := hamburg.trd.ImportWith(ctx, "CarRentalService")
	if err != nil || len(offers) != 0 {
		t.Fatalf("hop 0 offers = %v, %v", offers, err)
	}
	offers, err = hamburg.trd.ImportWith(ctx, "CarRentalService", trader.Hops(1))
	if err != nil || len(offers) != 1 || offers[0].Ref != isar {
		t.Fatalf("hop 1 offers = %v, %v", offers, err)
	}

	// And the federated offer is directly bindable from Hamburg.
	gc := genclient.New(hamburg.node.Pool())
	binding, err := gc.Bind(ctx, offers[0].Ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := binding.InvokeForm(ctx, "SelectCar", map[string]string{
		"SelectCar.selection.days": "1",
	}); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrationMixedStubAndGeneric checks wire compatibility of all
// four client/server combinations over TCP.
func TestIntegrationMixedStubAndGeneric(t *testing.T) {
	ctx := context.Background()

	// Dynamic server (cosm runtime, FSM off so the stateless static
	// client may Commit first).
	sid := sidl.CarRentalSID()
	dynSvc, err := cosm.NewService(sid, cosm.WithoutFSMEnforcement())
	if err != nil {
		t.Fatal(err)
	}
	dynSvc.MustHandle("SelectCar", func(call *cosm.Call) error {
		out := xcode.Zero(sid.Type("SelectCarReturn_t"))
		if err := out.SetField("available", xcode.NewBool(sidl.Basic(sidl.Bool), true)); err != nil {
			return err
		}
		call.Result = out
		return nil
	})
	dynSvc.MustHandle("Commit", func(call *cosm.Call) error {
		call.Result = xcode.Zero(sid.Type("BookCarReturn_t"))
		return nil
	})
	dynNode := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	if err := dynNode.Host("CarRentalService", dynSvc); err != nil {
		t.Fatal(err)
	}
	if _, err := dynNode.ListenAndServe("tcp:127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer dynNode.Close()
	dynRef := dynNode.MustRefFor("CarRentalService")

	// Static server (hand-written stubs over bare wire).
	statSrv := wire.NewServer(wire.WithServerLog(func(string, ...any) {}))
	if err := statSrv.Register("CarRentalService", stub.Handler(stub.FixedImpl{ChargePerDay: 80})); err != nil {
		t.Fatal(err)
	}
	statEP, err := statSrv.ListenAndServe("tcp:127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer statSrv.Close()
	statRef := ref.New(statEP, "CarRentalService")

	pool := wire.NewPool()
	defer pool.Close()

	servers := []struct {
		name string
		ref  ref.ServiceRef
	}{{"dynamic-server", dynRef}, {"static-server", statRef}}
	for _, srv := range servers {
		srv := srv
		t.Run("static-client/"+srv.name, func(t *testing.T) {
			c, err := stub.Dial(pool, srv.ref, "mix")
			if err != nil {
				t.Fatal(err)
			}
			sel, err := c.SelectCar(ctx, stub.SelectCarRequest{Model: stub.FIATUno, Days: 2})
			if err != nil || !sel.Available {
				t.Fatalf("SelectCar = %+v, %v", sel, err)
			}
		})
		t.Run("generic-client/"+srv.name, func(t *testing.T) {
			// The static server cannot serve a SID; supply it out of
			// band in that case.
			conn, err := cosm.BindWithSID(pool, srv.ref, sidl.CarRentalSID())
			if err != nil {
				t.Fatal(err)
			}
			sel := xcode.Zero(sid.Type("SelectCar_t"))
			if err := sel.SetField("days", xcode.NewInt(sidl.Basic(sidl.Int32), 2)); err != nil {
				t.Fatal(err)
			}
			res, err := conn.Invoke(ctx, "SelectCar", sel)
			if err != nil {
				t.Fatal(err)
			}
			if avail, _ := res.Value.Field("available"); !avail.Bool {
				t.Fatalf("available = %s", res.Value)
			}
		})
	}
}

// TestIntegrationConcurrentClients hammers one provider from many
// concurrent generic clients over TCP; sessions must stay isolated.
func TestIntegrationConcurrentClients(t *testing.T) {
	ctx := context.Background()
	in := startInfra(t, "it-conc")
	target := startProvider(t, in, "ConcurrentCars", carrental.DefaultTariff())

	const clients = 12
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			gc := genclient.New(wire.NewPool())
			binding, err := gc.Bind(ctx, target)
			if err != nil {
				errs[i] = err
				return
			}
			for round := 0; round < 5; round++ {
				if _, err := binding.InvokeForm(ctx, "SelectCar", map[string]string{
					"SelectCar.selection.model": "VW_Golf",
					"SelectCar.selection.days":  fmt.Sprint(round + 1),
				}); err != nil {
					errs[i] = err
					return
				}
				res, err := binding.Invoke(ctx, "Commit")
				if err != nil {
					errs[i] = err
					return
				}
				conf, err := res.Value.Field("confirmation")
				if err != nil {
					errs[i] = err
					return
				}
				if want := fmt.Sprintf("VW_Golf-%dd", round+1); !strings.Contains(conf.Str, want) {
					errs[i] = fmt.Errorf("client %d round %d got %q, want %q", i, round, conf.Str, want)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}

// TestIntegrationGroupBroadcast pings a group of provider nodes through
// the group manager plus wire groups (the multicast function of Fig. 6).
func TestIntegrationGroupBroadcast(t *testing.T) {
	ctx := context.Background()
	in := startInfra(t, "it-groups")

	gclient, err := naming.DialGroups(ctx, in.node.Pool(), in.node.MustRefFor(naming.GroupServiceName))
	if err != nil {
		t.Fatal(err)
	}
	var refs []ref.ServiceRef
	for i := 0; i < 3; i++ {
		r := startProvider(t, in, fmt.Sprintf("GroupCars%d", i), carrental.DefaultTariff())
		refs = append(refs, r)
		if err := gclient.Join(ctx, "providers", r.Endpoint); err != nil {
			t.Fatal(err)
		}
	}
	members, err := gclient.Members(ctx, "providers")
	if err != nil || len(members) != 3 {
		t.Fatalf("members = %v, %v", members, err)
	}

	pool := wire.NewPool()
	defer pool.Close()
	grp := wire.NewGroup(pool)
	for _, m := range members {
		grp.Join(m)
	}
	// Broadcast a liveness ping to each provider's service.
	results := grp.Broadcast(ctx, &wire.Request{Service: "GroupCars0", Op: cosm.OpPing})
	okCount := 0
	for _, r := range results {
		if r.Err == nil {
			okCount++
		}
	}
	// Only the node hosting GroupCars0 answers that service name; the
	// others respond with "no such service" — which is still a timely
	// response, proving connectivity.
	if okCount != 1 {
		t.Fatalf("okCount = %d, want 1 (results %+v)", okCount, results)
	}
}
