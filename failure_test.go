package bench

// Failure-injection tests: the open market must degrade gracefully when
// providers disappear, when clients misbehave on the wire, and when
// descriptions drift — the realistic open-system conditions the paper
// argues COSM must survive.

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"cosm/internal/carrental"
	"cosm/internal/cosm"
	"cosm/internal/genclient"
	"cosm/internal/journal"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/trader"
	"cosm/internal/typemgr"
	"cosm/internal/wire"
	"cosm/internal/xcode"
)

// TestFailureProviderCrashMidSession kills a provider between SelectCar
// and Commit: the binding fails cleanly, and the client recovers by
// importing an alternative offer and completing the booking there.
func TestFailureProviderCrashMidSession(t *testing.T) {
	ctx := context.Background()
	in := startInfra(t, "fail-crash")

	// Two competing providers; we will crash the cheaper one.
	cheap := startProvider(t, in, "CheapCars", carrental.Tariff{"FIAT_Uno": 70})
	_ = startProvider(t, in, "SolidCars", carrental.Tariff{"FIAT_Uno": 80})

	offer, err := in.trd.ImportOneWith(ctx, "CarRentalService",
		trader.OrderBy("min:ChargePerDay"))
	if err != nil || offer.Ref != cheap {
		t.Fatalf("offer = %+v, %v", offer, err)
	}

	gc := genclient.New(wire.NewPool())
	binding, err := gc.Bind(ctx, offer.Ref)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := binding.InvokeForm(ctx, "SelectCar", map[string]string{
		"SelectCar.selection.model": "FIAT_Uno",
		"SelectCar.selection.days":  "1",
	}); err != nil {
		t.Fatal(err)
	}

	// Crash the provider node (we reach it through the infra test
	// helper's cleanup ordering, so crash by closing its node: the
	// provider's ref endpoint identifies the node to kill).
	crashProviderNode(t, cheap.Endpoint)

	_, err = binding.Invoke(ctx, "Commit")
	if err == nil {
		t.Fatal("Commit against a crashed provider must fail")
	}
	if !errors.Is(err, wire.ErrClientClosed) && !errors.Is(err, wire.ErrRemote) {
		t.Fatalf("unexpected failure class: %v", err)
	}

	// Recovery: import again excluding the dead provider by constraint
	// (the trader still lists the stale offer — 1994 traders have no
	// liveness monitoring; the client works around it).
	offers, err := in.trd.ImportWith(ctx, "CarRentalService",
		trader.OrderBy("min:ChargePerDay"))
	if err != nil {
		t.Fatal(err)
	}
	var recovered bool
	for _, alt := range offers {
		if alt.Ref == cheap {
			continue // the stale offer
		}
		b2, err := gc.Bind(ctx, alt.Ref)
		if err != nil {
			continue
		}
		if _, err := b2.InvokeForm(ctx, "SelectCar", map[string]string{
			"SelectCar.selection.model": "FIAT_Uno",
			"SelectCar.selection.days":  "1",
		}); err != nil {
			continue
		}
		res, err := b2.Invoke(ctx, "Commit")
		if err != nil {
			continue
		}
		if conf, _ := res.Value.Field("confirmation"); strings.Contains(conf.Str, "FIAT_Uno") {
			recovered = true
			break
		}
	}
	if !recovered {
		t.Fatal("client failed to recover via an alternative offer")
	}
}

// TestFailureResilientImportBind is the resilient counterpart of
// TestFailureProviderCrashMidSession: with the failover binding path
// there is no manual workaround. The cheapest provider is crashed, yet
// a single ImportBind call books successfully against the next-best
// offer, and the trader's sweeper first suspects and then withdraws
// the dead offer — within one sweep each, no real time elapsing.
func TestFailureResilientImportBind(t *testing.T) {
	ctx := context.Background()
	in := startInfra(t, "fail-resilient")

	cheap := startProvider(t, in, "CheapestCars", carrental.Tariff{"FIAT_Uno": 60})
	solid := startProvider(t, in, "SturdyCars", carrental.Tariff{"FIAT_Uno": 75})
	crashProviderNode(t, cheap.Endpoint)

	// One call: import (cheapest first), fail over past the dead
	// provider, bind the live one. Fast-fail policy: one attempt is
	// enough to prove the endpoint dead (connection refused).
	pool := wire.NewPool(wire.WithCallPolicy(wire.CallPolicy{
		MaxAttempts: 1, AttemptTimeout: 5 * time.Second,
	}))
	defer pool.Close()
	conn, offer, err := trader.Select(ctx, in.trd, pool, "CarRentalService",
		trader.OrderBy("min:ChargePerDay"))
	if err != nil {
		t.Fatal(err)
	}
	if offer.Ref != solid {
		t.Fatalf("failover bound %v, want %v", offer.Ref, solid)
	}

	// The booking completes through the generic client on the adopted
	// binding, FSM interception included.
	gc := genclient.New(pool)
	binding := gc.Adopt(conn)
	if _, err := binding.InvokeForm(ctx, "SelectCar", map[string]string{
		"SelectCar.selection.model": "FIAT_Uno",
		"SelectCar.selection.days":  "2",
	}); err != nil {
		t.Fatal(err)
	}
	res, err := binding.Invoke(ctx, "Commit")
	if err != nil {
		t.Fatal(err)
	}
	if conf, _ := res.Value.Field("confirmation"); !strings.Contains(conf.Str, "FIAT_Uno-2d") {
		t.Fatalf("confirmation = %v", conf)
	}

	// The sweeper runs on the trader side over its own pool. Sweep 1
	// suspects the dead offer, sweep 2 withdraws it: deterministic,
	// driven synchronously — no sweep interval needs to elapse.
	sweeper := trader.NewSweeper(in.trader, in.node.Pool(), trader.WithFailThreshold(2))
	defer sweeper.Close()
	if rep := sweeper.SweepOnce(ctx); rep.Suspected != 1 || rep.Withdrawn != 0 {
		t.Fatalf("sweep 1 = %+v, want the dead offer suspected", rep)
	}
	if rep := sweeper.SweepOnce(ctx); rep.Withdrawn != 1 {
		t.Fatalf("sweep 2 = %+v, want the dead offer withdrawn", rep)
	}
	offers, err := in.trd.ImportWith(ctx, "CarRentalService")
	if err != nil || len(offers) != 1 || offers[0].Ref != solid {
		t.Fatalf("post-sweep offers = %v, %v; want only the live provider", offers, err)
	}
}

// TestFailureGracefulDrainFailsOver is the graceful counterpart of the
// crash tests: a provider retires by deregistering (offer and browser
// entry withdrawn) and then draining. During the drain, the in-flight
// call completes, new requests to the draining node are shed with
// StatusOverloaded, and new bookings fail over to the remaining
// provider through a plain ImportBind — no sweeps, no stale offers.
func TestFailureGracefulDrainFailsOver(t *testing.T) {
	ctx := context.Background()
	in := startInfra(t, "fail-drain")

	// Provider A (the retiree, cheapest) hosts the published car rental
	// plus a Slow service carrying the in-flight call across the drain.
	nodeA := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	defer nodeA.Close()
	svcA, implA, err := carrental.New(carrental.WithTariff(carrental.Tariff{"FIAT_Uno": 65}))
	if err != nil {
		t.Fatal(err)
	}
	if err := nodeA.Host("DrainCars", svcA); err != nil {
		t.Fatal(err)
	}
	slowSID, err := sidl.Parse(`
module SlowOp {
    interface COSM_Operations {
        void Slow();
    };
};
`)
	if err != nil {
		t.Fatal(err)
	}
	slowSvc, err := cosm.NewService(slowSID)
	if err != nil {
		t.Fatal(err)
	}
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	slowSvc.MustHandle("Slow", func(*cosm.Call) error {
		started <- struct{}{}
		<-release
		return nil
	})
	if err := nodeA.Host("SlowOp", slowSvc); err != nil {
		t.Fatal(err)
	}
	if _, err := nodeA.ListenAndServe("tcp:127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	sidA := implA.SID().Clone()
	sidA.ServiceName = "DrainCars"
	for i, p := range sidA.Trader.Properties {
		if p.Name == "ChargePerDay" {
			sidA.Trader.Properties[i].Value = sidl.FloatLit(65)
		}
	}
	refA := nodeA.MustRefFor("DrainCars")
	pubA, err := carrental.Publish(ctx, sidA, refA, in.brw, in.trd)
	if err != nil {
		t.Fatal(err)
	}

	refB := startProvider(t, in, "StayCars", carrental.Tariff{"FIAT_Uno": 90})

	// Before the drain, A is the best offer.
	offer, err := in.trd.ImportOneWith(ctx, "CarRentalService",
		trader.OrderBy("min:ChargePerDay"))
	if err != nil || offer.Ref != refA {
		t.Fatalf("offer = %+v, %v; want %v", offer, err, refA)
	}

	pool := wire.NewPool()
	defer pool.Close()

	// Put one call in flight on A, confirmed to have entered the handler.
	connS, err := cosm.Bind(ctx, pool, nodeA.MustRefFor("SlowOp"))
	if err != nil {
		t.Fatal(err)
	}
	slowDone := make(chan error, 1)
	go func() {
		_, err := connS.Invoke(ctx, "Slow")
		slowDone <- err
	}()
	<-started

	// Retire A: deregister, then drain. The drain blocks on the Slow
	// call, so the node stays in the draining state until we release it.
	drained := make(chan error, 1)
	go func() {
		dctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		defer cancel()
		if err := pubA.Unpublish(dctx); err != nil {
			drained <- err
			return
		}
		drained <- nodeA.Shutdown(dctx)
	}()

	// Deregistration is visible to importers: poll until A's offer is
	// gone from the trader.
	deadline := time.Now().Add(5 * time.Second)
	for {
		offers, err := in.trd.ImportWith(ctx, "CarRentalService")
		if err != nil {
			t.Fatal(err)
		}
		stale := false
		for _, o := range offers {
			if o.Ref == refA {
				stale = true
			}
		}
		if !stale {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("offer of the draining provider never withdrawn")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// New bookings fail over to B through a plain import->bind.
	conn, offer2, err := trader.Select(ctx, in.trd, pool, "CarRentalService",
		trader.OrderBy("min:ChargePerDay"))
	if err != nil {
		t.Fatal(err)
	}
	if offer2.Ref != refB {
		t.Fatalf("bound %v during drain, want %v", offer2.Ref, refB)
	}
	gc := genclient.New(pool)
	binding := gc.Adopt(conn)
	if _, err := binding.InvokeForm(ctx, "SelectCar", map[string]string{
		"SelectCar.selection.model": "FIAT_Uno",
		"SelectCar.selection.days":  "1",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := binding.Invoke(ctx, "Commit"); err != nil {
		t.Fatal(err)
	}

	// A sheds new work while draining instead of accepting it.
	_, err = pool.Call(ctx, refA.Endpoint, &wire.Request{Service: "DrainCars", Op: "Describe"})
	var remote *wire.RemoteError
	if !errors.As(err, &remote) || remote.Status != wire.StatusOverloaded {
		t.Fatalf("call during drain = %v, want StatusOverloaded", err)
	}

	// The in-flight call survives the whole retirement: zero failed
	// in-flight calls during the drain.
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("in-flight call failed during drain: %v", err)
	}
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// crashProviderNode kills the provider node serving endpoint (tracked
// in the liveNodes registry by startProvider): listener and all
// connections drop, simulating a provider crash.
func crashProviderNode(t *testing.T, endpoint string) {
	t.Helper()
	nodesMu.Lock()
	node, ok := liveNodes[endpoint]
	delete(liveNodes, endpoint)
	nodesMu.Unlock()
	if !ok {
		t.Fatalf("no live node at %s", endpoint)
	}
	_ = node.Close()
}

// TestFailureGarbageCallBody sends a syntactically valid wire request
// whose body is junk: the service must answer StatusBadRequest and stay
// healthy.
func TestFailureGarbageCallBody(t *testing.T) {
	ctx := context.Background()
	svc, _, err := carrental.New()
	if err != nil {
		t.Fatal(err)
	}
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	if err := node.Host("CarRentalService", svc); err != nil {
		t.Fatal(err)
	}
	if _, err := node.ListenAndServe("loop:fail-garbage"); err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	client, err := node.Pool().Get(ctx, "loop:fail-garbage")
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.Call(ctx, &wire.Request{
		Service: "CarRentalService", Op: "SelectCar",
		Body: []byte{0xFF, 0x01, 0x02},
	})
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Status != wire.StatusBadRequest {
		t.Fatalf("err = %v, want StatusBadRequest", err)
	}

	// The service still works for well-formed clients.
	conn, err := cosm.Bind(ctx, node.Pool(), node.MustRefFor("CarRentalService"))
	if err != nil {
		t.Fatal(err)
	}
	sel := xcode.Zero(conn.SID().Type("SelectCar_t"))
	if err := sel.SetField("days", xcode.NewInt(sidl.Basic(sidl.Int32), 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Invoke(ctx, "SelectCar", sel); err != nil {
		t.Fatal(err)
	}
}

// TestFailureDriftedDescription simulates description drift: a client
// holds a stale SID whose operation no longer exists on the server. The
// failure is a clean "no such operation", not corruption.
func TestFailureDriftedDescription(t *testing.T) {
	ctx := context.Background()
	svc, _, err := carrental.New()
	if err != nil {
		t.Fatal(err)
	}
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	if err := node.Host("CarRentalService", svc); err != nil {
		t.Fatal(err)
	}
	if _, err := node.ListenAndServe("loop:fail-drift"); err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	stale := sidl.CarRentalSID()
	stale.FSM = nil // and the stale description knows no protocol
	stale.Ops = append(stale.Ops, sidl.Op{Name: "CancelBooking", Result: sidl.Basic(sidl.Bool)})
	conn, err := cosm.BindWithSID(node.Pool(), node.MustRefFor("CarRentalService"), stale)
	if err != nil {
		t.Fatal(err)
	}
	_, err = conn.Invoke(ctx, "CancelBooking")
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Status != wire.StatusNoOp {
		t.Fatalf("err = %v, want StatusNoOp", err)
	}
}

// TestFailureServerSideFSMBackstop shows the server-side enforcement
// catching a client whose stale SID lost the FSM: the protocol holds
// even against protocol-unaware clients.
func TestFailureServerSideFSMBackstop(t *testing.T) {
	ctx := context.Background()
	svc, _, err := carrental.New()
	if err != nil {
		t.Fatal(err)
	}
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	if err := node.Host("CarRentalService", svc); err != nil {
		t.Fatal(err)
	}
	if _, err := node.ListenAndServe("loop:fail-backstop"); err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	stale := sidl.CarRentalSID()
	stale.FSM = nil // protocol-unaware client
	conn, err := cosm.BindWithSID(node.Pool(), node.MustRefFor("CarRentalService"), stale)
	if err != nil {
		t.Fatal(err)
	}
	_, err = conn.Invoke(ctx, "Commit") // illegal in INIT; client doesn't know
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Status != wire.StatusProtocol {
		t.Fatalf("err = %v, want StatusProtocol from the server", err)
	}
}

// TestFailureSlowServerDoesNotBlockOthers verifies connection
// multiplexing under a stalled handler: a slow op on the same
// connection must not delay a fast one.
func TestFailureSlowServerDoesNotBlockOthers(t *testing.T) {
	ctx := context.Background()
	src := `
module Mixed {
    interface COSM_Operations {
        void Slow();
        void Fast();
    };
};
`
	sid, err := sidl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	svc, err := cosm.NewService(sid)
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	svc.MustHandle("Slow", func(*cosm.Call) error { <-release; return nil })
	svc.MustHandle("Fast", func(*cosm.Call) error { return nil })
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	if err := node.Host("Mixed", svc); err != nil {
		t.Fatal(err)
	}
	if _, err := node.ListenAndServe("loop:fail-slow"); err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	conn, err := cosm.Bind(ctx, node.Pool(), node.MustRefFor("Mixed"))
	if err != nil {
		t.Fatal(err)
	}
	slowDone := make(chan error, 1)
	go func() {
		_, err := conn.Invoke(ctx, "Slow")
		slowDone <- err
	}()
	fastCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	start := time.Now()
	if _, err := conn.Invoke(fastCtx, "Fast"); err != nil {
		t.Fatalf("Fast blocked behind Slow: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Fast took %v", elapsed)
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}
}

// TestFailureLeaderCrashPromoteReplica: a replicated trader pair over
// the wire — a journalled leader with synchronous replication and a
// follower read replica pulling its WAL. The leader node dies
// abruptly; the client re-binds to the replica and keeps importing,
// and after an explicit fenced promotion the replica accepts exports
// too, with every acknowledged offer intact.
func TestFailureLeaderCrashPromoteReplica(t *testing.T) {
	ctx := context.Background()

	openHATrader := func(id, dir string, opts ...trader.Option) *trader.Trader {
		t.Helper()
		tr := trader.New(id, typemgr.NewRepo(), opts...)
		j, err := journal.Open(dir, journal.Options{Fsync: journal.FsyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = j.Close() })
		if err := j.Start(tr.JournalSnapshot); err != nil {
			t.Fatal(err)
		}
		tr.SetJournal(j)
		return tr
	}
	serveTrader := func(tr *trader.Trader) (*cosm.Node, ref.ServiceRef) {
		t.Helper()
		svc, err := trader.NewService(tr)
		if err != nil {
			t.Fatal(err)
		}
		node := quietNode()
		if err := node.Host(trader.ServiceName, svc); err != nil {
			t.Fatal(err)
		}
		if _, err := node.ListenAndServe("tcp:127.0.0.1:0"); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = node.Close() })
		return node, node.MustRefFor(trader.ServiceName)
	}

	leader := openHATrader("HA", t.TempDir(), trader.WithReplSync(1, 2*time.Second))
	lnode, leaderRef := serveTrader(leader)

	follower := openHATrader("HA", t.TempDir())
	follower.SetFollower(leaderRef.String())
	fnode, followerRef := serveTrader(follower)
	src, err := trader.DialTrader(ctx, fnode.Pool(), leaderRef)
	if err != nil {
		t.Fatal(err)
	}
	fl := trader.NewFollower(follower, src, "replica-1")
	fl.Start()
	defer fl.Close()

	// Trade against the leader: with -repl-sync semantics every export
	// below has been pulled by the replica before it returns.
	pool := wire.NewPool()
	defer pool.Close()
	tc, err := trader.DialTrader(ctx, pool, leaderRef)
	if err != nil {
		t.Fatal(err)
	}
	if err := tc.DefineTypeFromSID(ctx, sidl.CarRentalSID()); err != nil {
		t.Fatal(err)
	}
	const acked = 10
	for i := 0; i < acked; i++ {
		r := ref.New(fmt.Sprintf("tcp:10.3.0.%d:7000", i), "CarRentalService")
		if _, err := tc.Export(ctx, "CarRentalService", r, carProps(float64(50+i))); err != nil {
			t.Fatal(err)
		}
	}

	// The replica is a read replica: local imports work, mutations are
	// redirected at the leader.
	tf, err := trader.DialTrader(ctx, pool, followerRef)
	if err != nil {
		t.Fatal(err)
	}
	if offers, err := tf.ImportWith(ctx, "CarRentalService"); err != nil || len(offers) != acked {
		t.Fatalf("replica import = %d offers, %v", len(offers), err)
	}
	_, err = tf.Export(ctx, "CarRentalService", ref.New("tcp:10.3.1.1:7000", "CarRentalService"), carProps(1))
	if err == nil || !strings.Contains(err.Error(), "not leader") {
		t.Fatalf("replica export = %v, want not-leader rejection with hint", err)
	}
	if !strings.Contains(err.Error(), leaderRef.String()) {
		t.Fatalf("rejection %q lacks leader ref %s", err, leaderRef)
	}

	// The leader node dies abruptly. The client's next import against
	// it fails; re-binding to the replica keeps the market readable.
	_ = lnode.Close()
	if _, err := tc.ImportWith(ctx, "CarRentalService"); err == nil {
		t.Fatal("import against the dead leader succeeded")
	}
	offers, err := tf.ImportWith(ctx, "CarRentalService")
	if err != nil || len(offers) != acked {
		t.Fatalf("replica import after leader death = %d offers, %v", len(offers), err)
	}

	// Fenced promotion over the wire turns the replica into the new
	// leader with zero lost acknowledged exports.
	if err := tf.Promote(ctx, 1); err != nil {
		t.Fatal(err)
	}
	st, err := tf.ReplStatus(ctx)
	if err != nil || st.Role != trader.RoleLeader || st.Epoch != 1 {
		t.Fatalf("promoted status = %+v, %v", st, err)
	}
	if _, err := tf.Export(ctx, "CarRentalService", ref.New("tcp:10.3.1.2:7000", "CarRentalService"), carProps(99)); err != nil {
		t.Fatal(err)
	}
	offers, err = tf.ImportWith(ctx, "CarRentalService")
	if err != nil || len(offers) != acked+1 {
		t.Fatalf("post-promotion import = %d offers, %v", len(offers), err)
	}
}
