module cosm

go 1.22
