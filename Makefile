# COSM build/verification entry points. `make check` is the gate every
# change must pass: build, vet, full tests, and the race detector over
# the whole tree (the resilience layer is concurrency-heavy).

GO ?= go

.PHONY: check build vet test race bench bench-smoke chaos

check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# A fast benchmark sanity pass for CI: the overload-saturation and
# obs-overhead groups run a few iterations so a regression that breaks
# or wildly slows the hot path is caught without a full bench run.
bench-smoke:
	$(GO) test -run 'NoSuchTest' -bench 'ObsOverhead|Overload_Saturation' -benchtime 20x -benchmem .

chaos:
	$(GO) run ./cmd/marketsim -chaos
