# COSM build/verification entry points. `make check` is the gate every
# change must pass: build, vet, full tests, and the race detector over
# the whole tree (the resilience layer is concurrency-heavy).

GO ?= go

.PHONY: check build vet test race bench chaos

check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

chaos:
	$(GO) run ./cmd/marketsim -chaos
