# COSM build/verification entry points. `make check` is the gate every
# change must pass: build, vet, full tests, and the race detector over
# the whole tree (the resilience layer is concurrency-heavy).

GO ?= go

.PHONY: check build vet test race bench bench-smoke bench-json chaos

check: build vet test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# A fast benchmark sanity pass for CI: the overload-saturation,
# obs-overhead, flight-recorder, and 10k-offer import groups run a few
# iterations so a
# regression that breaks or wildly slows a hot path is caught without a
# full bench run.
bench-smoke:
	$(GO) test -run 'NoSuchTest' -bench 'ObsOverhead|SpanOverhead|EventLogAppend|Overload_Saturation|Import_10kOffers' -benchtime 20x -benchmem .

# Machine-readable benchmark record for the current PR's tentpole, as
# go-test JSON events for tracking across commits. PR selects the
# output file; BENCH_PATTERN the benchmark group — defaults cover the
# semantic-matchmaking PR (graded conformant imports over a five-level
# hierarchy vs the flat exact path and the linear oracle) plus the
# exact-match and mesh groups it must not regress.
# `make bench-json PR=9
# BENCH_PATTERN='Mesh_50Traders|Mesh_GossipRound|Import_10kOffers|JournalAppend'`
# reproduces the previous record.
PR ?= 10
BENCH_PATTERN ?= Import_Conformant_10kOffers|Import_10kOffers|Mesh_50Traders
# Wall-clock benchmarks (seconds per op: failure detection + election)
# run few iterations — 100x of a real leader kill would take minutes.
BENCH_SLOW_PATTERN ?= FailoverLatency

bench-json:
	$(GO) test -json -run 'NoSuchTest' -bench '$(BENCH_PATTERN)' -benchtime 100x -benchmem . > BENCH_$(PR).json
	$(GO) test -json -run 'NoSuchTest' -bench '$(BENCH_SLOW_PATTERN)' -benchtime 5x -benchmem . >> BENCH_$(PR).json

chaos:
	$(GO) run ./cmd/marketsim -chaos
