package main

import (
	"context"
	"io"
	"log"
	"os"
	"testing"
	"time"

	"cosm/internal/browser"
	"cosm/internal/cosm"
	"cosm/internal/genclient"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/trader"
	"cosm/internal/typemgr"
	"cosm/internal/wire"
)

// startInfra hosts a browser and a trader for the daemon to publish to.
func startInfra(t *testing.T, loopName string) (browserRef, traderRef ref.ServiceRef) {
	t.Helper()
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	bsvc, err := browser.NewService(browser.NewDirectory())
	if err != nil {
		t.Fatal(err)
	}
	repo := typemgr.NewRepo()
	st, err := typemgr.FromSID(sidl.CarRentalSID())
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Define(st); err != nil {
		t.Fatal(err)
	}
	tsvc, err := trader.NewService(trader.New("infra", repo))
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Host(browser.ServiceName, bsvc); err != nil {
		t.Fatal(err)
	}
	if err := node.Host(trader.ServiceName, tsvc); err != nil {
		t.Fatal(err)
	}
	if _, err := node.ListenAndServe("loop:" + loopName); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	return node.MustRefFor(browser.ServiceName), node.MustRefFor(trader.ServiceName)
}

func TestDaemonPublishesAndBooks(t *testing.T) {
	log.SetOutput(io.Discard)
	defer log.SetOutput(os.Stderr)
	browserRef, traderRef := startInfra(t, "carrentald-infra")

	sig := make(chan os.Signal)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "loop:carrentald-test",
			"-browser", browserRef.String(),
			"-trader", traderRef.String(),
		}, sig)
	}()

	pool := wire.NewPool()
	defer pool.Close()
	ctx := context.Background()
	carRef := ref.New("loop:carrentald-test", "CarRentalService")

	// Wait for the daemon, then verify both publication paths.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if err := cosm.Ping(ctx, pool, carRef); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("daemon never came up")
		}
		time.Sleep(10 * time.Millisecond)
	}

	bc, err := browser.DialBrowser(ctx, pool, browserRef)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := bc.Search(ctx, "car")
	if err != nil || len(entries) != 1 || entries[0].Ref != carRef {
		t.Fatalf("browser entries = %v, %v", entries, err)
	}
	tc, err := trader.DialTrader(ctx, pool, traderRef)
	if err != nil {
		t.Fatal(err)
	}
	offer, err := tc.ImportOneWith(ctx, "CarRentalService")
	if err != nil || offer.Ref != carRef {
		t.Fatalf("trader offer = %+v, %v", offer, err)
	}

	// Book a car through the generic client.
	gc := genclient.New(pool)
	binding, err := gc.Bind(ctx, carRef)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := binding.InvokeForm(ctx, "SelectCar", map[string]string{
		"SelectCar.selection.model": "FIAT_Uno",
		"SelectCar.selection.days":  "1",
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := binding.Invoke(ctx, "Commit"); err != nil {
		t.Fatal(err)
	}

	close(sig)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	// Shutdown deregisters: the browser entry and the trader offer are
	// withdrawn, so new importers are routed to other providers.
	if entries, _ := bc.Search(ctx, "car"); len(entries) != 0 {
		t.Fatalf("browser entries after shutdown = %v", entries)
	}
	if _, err := tc.ImportOneWith(ctx, "CarRentalService"); err == nil {
		t.Fatal("trader offer must be withdrawn after shutdown")
	}
}

func TestDaemonErrors(t *testing.T) {
	log.SetOutput(io.Discard)
	defer log.SetOutput(os.Stderr)
	if err := run([]string{"-listen", "junk"}, nil); err == nil {
		t.Fatal("bad endpoint must fail")
	}
	if err := run([]string{"-listen", "loop:carrentald-badbrw", "-browser", "junk"}, nil); err == nil {
		t.Fatal("bad browser ref must fail")
	}
	if err := run([]string{"-listen", "loop:carrentald-badtrd", "-trader", "junk"}, nil); err == nil {
		t.Fatal("bad trader ref must fail")
	}
	if err := run([]string{"-listen", "loop:carrentald-ghost", "-browser", "cosm://loop:ghost/cosm.browser"}, nil); err == nil {
		t.Fatal("unreachable browser must fail")
	}
}
