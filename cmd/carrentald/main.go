// Command carrentald runs the paper's running example: the remote car
// rental server, published via browser mediation and/or trader export.
//
// Usage:
//
//	carrentald -listen tcp:127.0.0.1:7010 \
//	           -browser cosm://tcp:127.0.0.1:7002/cosm.browser \
//	           -trader  cosm://tcp:127.0.0.1:7001/cosm.trader
//
// On SIGINT/SIGTERM the daemon deregisters first (withdraws its trader
// offer and browser entry, so clients fail over to other providers)
// and then drains: in-flight rentals finish under -drain-timeout.
//
// The shared daemon flags (see internal/daemon) include the flight
// recorder: a rental session traced end to end appears under
// /debug/traces here as the server-side spans of the importer's trace.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"cosm/internal/browser"
	"cosm/internal/carrental"
	"cosm/internal/cosm"
	"cosm/internal/daemon"
	"cosm/internal/obs"
	"cosm/internal/ref"
	"cosm/internal/trader"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("carrentald: ")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], sig); err != nil {
		log.Fatal(err)
	}
}

// run starts the daemon and blocks until sig delivers or closes.
func run(args []string, sig <-chan os.Signal) error {
	fs := flag.NewFlagSet("carrentald", flag.ContinueOnError)
	var (
		listen     = fs.String("listen", "tcp:127.0.0.1:7010", "endpoint to serve on")
		browserRef = fs.String("browser", "", "browser reference to register the SID at (mediation path)")
		traderRef  = fs.String("trader", "", "trader reference to export the offer at (trading path)")
		name       = fs.String("name", "CarRentalService", "service name to host under")
	)
	df := daemon.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	svc, impl, err := carrental.New()
	if err != nil {
		return err
	}
	logger := obs.NewLogger(os.Stderr, "carrentald")
	node := cosm.NewNode(df.NodeOptions(logger.With("wire"))...)
	if err := node.Host(*name, svc); err != nil {
		return err
	}
	endpoint, err := node.ListenAndServe(*listen)
	if err != nil {
		return err
	}
	defer node.Close()
	self := ref.New(endpoint, *name)
	ctx := context.Background()

	intro, err := df.Introspection(func() error {
		if node.Draining() {
			return errors.New("draining")
		}
		return nil
	})
	if err != nil {
		return err
	}
	defer intro.Close()
	if intro != nil {
		log.Printf("metrics at http://%s/metrics", intro.Addr())
	}

	var bc *browser.Client
	if *browserRef != "" {
		r, err := ref.Parse(*browserRef)
		if err != nil {
			return err
		}
		if bc, err = browser.DialBrowser(ctx, node.Pool(), r); err != nil {
			return err
		}
	}
	var tc *trader.Client
	if *traderRef != "" {
		r, err := ref.Parse(*traderRef)
		if err != nil {
			return err
		}
		if tc, err = trader.DialTrader(ctx, node.Pool(), r); err != nil {
			return err
		}
	}
	pub, err := carrental.Publish(ctx, impl.SID(), self, bc, tc)
	if err != nil {
		return err
	}

	log.Printf("car rental serving at %s (browser=%v trader=%v)", self, bc != nil, tc != nil)
	s := <-sig
	log.Printf("received %v: %d bookings served, draining", s, impl.Bookings())

	// Deregister before draining: once the offer and browser entry are
	// gone, new importers bind elsewhere while in-flight rentals finish.
	return df.Drain(node, pub.Unpublish, log.Printf)
}
