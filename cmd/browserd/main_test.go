package main

import (
	"context"
	"io"
	"log"
	"os"
	"testing"
	"time"

	"cosm/internal/browser"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/wire"
)

func dialUp(t *testing.T, pool *wire.Pool, r ref.ServiceRef) *browser.Client {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(5 * time.Second)
	for {
		bc, err := browser.DialBrowser(ctx, pool, r)
		if err == nil {
			return bc
		}
		if time.Now().After(deadline) {
			t.Fatalf("browser never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDaemonRegistersAndSearches(t *testing.T) {
	log.SetOutput(io.Discard)
	defer log.SetOutput(os.Stderr)

	sig := make(chan os.Signal)
	done := make(chan error, 1)
	go func() { done <- run([]string{"-listen", "loop:browserd-test"}, sig) }()

	pool := wire.NewPool()
	defer pool.Close()
	bc := dialUp(t, pool, ref.New("loop:browserd-test", browser.ServiceName))
	ctx := context.Background()
	if err := bc.RegisterSID(ctx, sidl.CarRentalSID(), ref.New("tcp:p:1", "CarRentalService")); err != nil {
		t.Fatal(err)
	}
	entries, err := bc.Search(ctx, "car")
	if err != nil || len(entries) != 1 {
		t.Fatalf("Search = %v, %v", entries, err)
	}

	close(sig)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDaemonCascadeViaParentFlag(t *testing.T) {
	log.SetOutput(io.Discard)
	defer log.SetOutput(os.Stderr)

	// Parent browser first.
	parentSig := make(chan os.Signal)
	parentDone := make(chan error, 1)
	go func() { parentDone <- run([]string{"-listen", "loop:browserd-parent"}, parentSig) }()
	pool := wire.NewPool()
	defer pool.Close()
	parentRef := ref.New("loop:browserd-parent", browser.ServiceName)
	parentClient := dialUp(t, pool, parentRef)

	// Child registers itself at the parent via -parent.
	childSig := make(chan os.Signal)
	childDone := make(chan error, 1)
	go func() {
		childDone <- run([]string{
			"-listen", "loop:browserd-child",
			"-parent", parentRef.String(),
		}, childSig)
	}()
	dialUp(t, pool, ref.New("loop:browserd-child", browser.ServiceName))

	// The parent eventually lists the child's own SID.
	ctx := context.Background()
	deadline := time.Now().Add(5 * time.Second)
	for {
		entries, err := parentClient.Search(ctx, "browser")
		if err == nil && len(entries) == 1 && entries[0].Ref.Endpoint == "loop:browserd-child" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cascade registration never appeared: %v, %v", entries, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	close(childSig)
	if err := <-childDone; err != nil {
		t.Fatal(err)
	}
	close(parentSig)
	if err := <-parentDone; err != nil {
		t.Fatal(err)
	}
}

func TestDaemonErrors(t *testing.T) {
	log.SetOutput(io.Discard)
	defer log.SetOutput(os.Stderr)
	if err := run([]string{"-listen", "nope"}, nil); err == nil {
		t.Fatal("bad endpoint must fail")
	}
	if err := run([]string{"-listen", "loop:browserd-badparent", "-parent", "junk"}, nil); err == nil {
		t.Fatal("bad parent ref must fail")
	}
	if err := run([]string{"-listen", "loop:browserd-noparent", "-parent", "cosm://loop:ghost/cosm.browser"}, nil); err == nil {
		t.Fatal("unreachable parent must fail")
	}
}

// TestDaemonJournalRestart drains a journaled browserd and boots a
// second one on the same data directory: registrations written during
// the first life — including one registered just before the drain —
// survive into the second.
func TestDaemonJournalRestart(t *testing.T) {
	log.SetOutput(io.Discard)
	defer log.SetOutput(os.Stderr)
	dataDir := t.TempDir()

	sig := make(chan os.Signal)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "loop:browserd-journal", "-data-dir", dataDir, "-fsync", "interval"}, sig)
	}()
	pool := wire.NewPool()
	defer pool.Close()
	bc := dialUp(t, pool, ref.New("loop:browserd-journal", browser.ServiceName))
	ctx := context.Background()
	if err := bc.RegisterSID(ctx, sidl.CarRentalSID(), ref.New("tcp:p:1", "CarRentalService")); err != nil {
		t.Fatal(err)
	}
	// With -fsync interval this registration may still be unsynced when
	// the drain starts; the OnDrain hook must flush it.
	close(sig)
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	sig2 := make(chan os.Signal)
	done2 := make(chan error, 1)
	go func() {
		done2 <- run([]string{"-listen", "loop:browserd-journal2", "-data-dir", dataDir}, sig2)
	}()
	bc2 := dialUp(t, pool, ref.New("loop:browserd-journal2", browser.ServiceName))
	entries, err := bc2.Search(ctx, "car")
	if err != nil || len(entries) != 1 || entries[0].Ref != ref.New("tcp:p:1", "CarRentalService") {
		t.Fatalf("recovered Search = %v, %v", entries, err)
	}
	close(sig2)
	if err := <-done2; err != nil {
		t.Fatal(err)
	}
}
