// Command browserd runs a COSM browser daemon: the mediation directory
// of Fig. 4 as a network service.
//
// Usage:
//
//	browserd -listen tcp:127.0.0.1:7002
//	browserd -listen tcp:127.0.0.1:7003 -parent cosm://tcp:127.0.0.1:7002/cosm.browser
//
// With -parent, the browser registers its own SID at another browser,
// forming the browser cascade of section 3.2.
//
// The shared daemon flags (see internal/daemon) include the flight
// recorder: with -metrics-addr set, /debug/traces shows recent and
// slowest request trees — a cascaded lookup's spans link across every
// browser it touched — and -slow-ms promotes slow requests into
// structured log lines carrying their trace ID.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cosm/internal/browser"
	"cosm/internal/cosm"
	"cosm/internal/daemon"
	"cosm/internal/obs"
	"cosm/internal/ref"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("browserd: ")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], sig); err != nil {
		log.Fatal(err)
	}
}

// run starts the daemon and blocks until sig delivers or closes.
func run(args []string, sig <-chan os.Signal) error {
	fs := flag.NewFlagSet("browserd", flag.ContinueOnError)
	var (
		listen = fs.String("listen", "tcp:127.0.0.1:7002", "endpoint to serve on (tcp:host:port or loop:name)")
		parent = fs.String("parent", "", "parent browser reference cosm://endpoint/service to register at")
	)
	df := daemon.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	logger := obs.NewLogger(os.Stderr, "browserd")
	dir := browser.NewDirectory(
		browser.WithDirectoryLogger(logger.With("browser")),
		browser.WithDirectoryMetrics(df.Registry))

	// Recovery happens before the node listens: by the time the first
	// connection is accepted the directory is the pre-crash one.
	j, err := df.OpenJournal()
	if err != nil {
		return err
	}
	defer j.Close()
	if j != nil {
		start := time.Now()
		if snap, ok := j.Snapshot(); ok {
			if err := dir.RestoreSnapshot(snap); err != nil {
				return fmt.Errorf("recover %s: %w", df.DataDir, err)
			}
		}
		if err := j.Replay(dir.ReplayRecord); err != nil {
			return fmt.Errorf("recover %s: %w", df.DataDir, err)
		}
		if err := j.Start(dir.JournalSnapshot); err != nil {
			return err
		}
		dir.SetJournal(j)
		// Snapshot immediately so the recovered state is re-anchored in
		// one file: recovery cost stays bounded even if the daemon
		// crashes again before the first background compaction.
		if err := j.Compact(); err != nil {
			return err
		}
		log.Printf("recovered %d registrations from %s in %v", dir.Len(), df.DataDir, time.Since(start))
	}

	svc, err := browser.NewService(dir)
	if err != nil {
		return err
	}
	node := cosm.NewNode(df.NodeOptions(logger.With("wire"))...)
	if j != nil {
		// Final flush+fsync after the drain, before connections close.
		node.OnDrain(func() {
			if err := j.Sync(); err != nil {
				log.Printf("journal sync on drain: %v", err)
			}
		})
	}
	if err := node.Host(browser.ServiceName, svc); err != nil {
		return err
	}
	endpoint, err := node.ListenAndServe(*listen)
	if err != nil {
		return err
	}
	defer node.Close()
	self := ref.New(endpoint, browser.ServiceName)

	intro, err := df.Introspection(func() error {
		if node.Draining() {
			return errors.New("draining")
		}
		return nil
	})
	if err != nil {
		return err
	}
	defer intro.Close()
	if intro != nil {
		log.Printf("metrics at http://%s/metrics", intro.Addr())
	}

	// In a cascade, deregister withdraws this browser's SID from the
	// parent so cascaded lookups stop routing here during the drain.
	var deregister func(context.Context) error
	if *parent != "" {
		ctx := context.Background()
		parentRef, err := ref.Parse(*parent)
		if err != nil {
			return err
		}
		pc, err := browser.DialBrowser(ctx, node.Pool(), parentRef)
		if err != nil {
			return err
		}
		if err := pc.RegisterSID(ctx, svc.SID(), self); err != nil {
			return err
		}
		log.Printf("registered own SID at parent %s", parentRef)
		name := svc.SID().ServiceName
		deregister = func(ctx context.Context) error { return pc.Withdraw(ctx, name) }
	}

	log.Printf("browser serving at %s", self)
	s := <-sig
	log.Printf("received %v, draining", s)
	return df.Drain(node, deregister, log.Printf)
}
