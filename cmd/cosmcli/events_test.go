package main

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cosm/internal/obs"
)

// startIntrospection serves one fake daemon's flight-recorder endpoints.
func startIntrospection(t *testing.T, rec *obs.SpanRecorder, ev *obs.EventLog) string {
	t.Helper()
	srv := httptest.NewServer(obs.HandlerWith(obs.NewRegistry(), nil, obs.MuxConfig{Spans: rec, Events: ev}))
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

// TestEventsCommandMergesTimelines merges two daemons' timelines into
// one causally ordered cluster view.
func TestEventsCommandMergesTimelines(t *testing.T) {
	base := time.Now()
	clock := base
	evA := obs.NewEventLog("nodeA", 16).WithClock(func() time.Time { return clock })
	evB := obs.NewEventLog("nodeB", 16).WithClock(func() time.Time { return clock })

	clock = base
	evB.Record("suspect", "misses", "3")
	clock = base.Add(10 * time.Millisecond)
	evB.Record("candidacy", "epoch", "2")
	clock = base.Add(20 * time.Millisecond)
	evA.Record("vote_granted", "candidate", "B", "epoch", "2")
	clock = base.Add(30 * time.Millisecond)
	evB.Record("promote", "epoch", "2")

	addrA := startIntrospection(t, nil, evA)
	addrB := startIntrospection(t, nil, evB)

	out, err := capture(t, func() error {
		return runWithInput([]string{"events", addrA, addrB}, strings.NewReader(""))
	})
	if err != nil {
		t.Fatal(err)
	}
	order := []string{"suspect", "candidacy", "vote_granted", "promote"}
	pos := -1
	for _, kind := range order {
		i := strings.Index(out, kind)
		if i < 0 {
			t.Fatalf("merged timeline missing %q:\n%s", kind, out)
		}
		if i < pos {
			t.Fatalf("merged timeline out of causal order at %q:\n%s", kind, out)
		}
		pos = i
	}
	if !strings.Contains(out, "nodeA") || !strings.Contains(out, "nodeB") {
		t.Fatalf("timeline lost node attribution:\n%s", out)
	}
}

// TestTraceCommandAssemblesTree gathers one trace's spans from two
// daemons — each holding only its own hops — into a single tree.
func TestTraceCommandAssemblesTree(t *testing.T) {
	base := time.Now()
	recA := obs.NewSpanRecorder(16)
	recB := obs.NewSpanRecorder(16)
	recA.Record(obs.Span{Trace: "tr9", ID: "c1", Op: "cosm.trader/Import", Kind: obs.SpanClient, Status: "ok", Start: base, Duration: 40 * time.Millisecond})
	recB.Record(obs.Span{Trace: "tr9", ID: "s1", Parent: "c1", Op: "cosm.trader/Import", Kind: obs.SpanServer, Status: "ok", Start: base.Add(time.Millisecond), Duration: 38 * time.Millisecond})
	recB.Record(obs.Span{Trace: "tr9", ID: "c2", Parent: "s1", Op: "cosm.trader/ReplPull", Kind: obs.SpanClient, Status: "ok", Start: base.Add(2 * time.Millisecond), Duration: 20 * time.Millisecond})

	addrA := startIntrospection(t, recA, nil)
	addrB := startIntrospection(t, recB, nil)

	out, err := capture(t, func() error {
		return runWithInput([]string{"trace", addrA, addrB, "tr9"}, strings.NewReader(""))
	})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Trace string          `json:"trace"`
		Spans int             `json:"spans"`
		Roots []*obs.SpanNode `json:"roots"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("trace output not JSON: %v\n%s", err, out)
	}
	if doc.Trace != "tr9" || doc.Spans != 3 || len(doc.Roots) != 1 {
		t.Fatalf("trace doc = %+v", doc)
	}
	if len(doc.Roots[0].Children) != 1 || len(doc.Roots[0].Children[0].Children) != 1 {
		t.Fatalf("tree not three hops deep: %+v", doc.Roots[0])
	}

	if _, err := capture(t, func() error {
		return runWithInput([]string{"trace", addrA, "no-such-trace"}, strings.NewReader(""))
	}); err == nil || !strings.Contains(err.Error(), "no spans found") {
		t.Fatalf("missing trace error = %v", err)
	}
}
