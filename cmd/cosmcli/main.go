// Command cosmcli is the command-line incarnation of the COSM generic
// client (Fig. 3): it can describe, browse, render the generated user
// interface of, and dynamically invoke any COSM service, with zero
// service-specific code.
//
// Usage:
//
//	cosmcli describe cosm://tcp:127.0.0.1:7010/CarRentalService
//	cosmcli ui       cosm://tcp:127.0.0.1:7010/CarRentalService
//	cosmcli browse   cosm://tcp:127.0.0.1:7002/cosm.browser [keyword]
//	cosmcli invoke   cosm://.../CarRentalService SelectCar \
//	                 SelectCar.selection.model=FIAT_Uno \
//	                 SelectCar.selection.days=3
//	cosmcli session  cosm://.../CarRentalService 'SelectCar a.b=c ...' 'Commit'
//	cosmcli import   cosm://.../cosm.trader CarRentalService \
//	                 -constraint 'ChargePerDay < 100' -policy min:ChargePerDay \
//	                 -hops 1 -max-peers 3 -hedge 50ms
//	cosmcli import   cosm://.../cosm.trader Vehicle \
//	                 -conformant -min-grade subtype -policy score
//	cosmcli links    cosm://.../cosm.trader list
//	cosmcli links    cosm://.../cosm.trader add munich cosm://tcp:10.0.0.2:7001/cosm.trader
//	cosmcli links    cosm://.../cosm.trader remove munich
//	cosmcli dump     cosm://.../cosm.trader > offers.json
//	cosmcli restore  cosm://.../cosm.trader offers.json
//	cosmcli stats    127.0.0.1:9100
//	cosmcli events   127.0.0.1:9100 127.0.0.1:9101 127.0.0.1:9102
//	cosmcli trace    127.0.0.1:9100 127.0.0.1:9101 4f2a90c1d06b73e8
//
// events fetches each daemon's /debug/events timeline and merges them
// into one chronological cluster view — the post-mortem of a failover:
// suspicion, candidacies, votes, the promotion, the old leader's
// rejoin, each attributed to its node. trace fetches the flight
// recorder spans for one trace ID from every listed daemon and prints
// the reassembled cross-process call tree as JSON (find recent trace
// IDs under /debug/traces on any daemon).
//
// dump writes every live offer the trader holds as a JSON document on
// stdout, in the trader's canonical durable form (the same
// representation its write-ahead journal uses). restore re-exports a
// dump at a trader — the same one after data loss, or a different one
// when migrating a market — deriving each offer's remaining lease from
// its recorded expiry and skipping offers that have already expired.
// Restored offers get fresh trader-assigned IDs.
//
// stats takes the daemon's -metrics-addr (an HTTP address, not a COSM
// reference) and prints a snapshot of its /debug/vars introspection
// document: goroutines, heap, and every cosm_* metric.
//
// The global -timeout flag (before the subcommand) bounds the whole
// command; the deadline is propagated on the wire, so overloaded or
// hung servers fail the command instead of wedging it. In the repl the
// timeout applies per invocation.
//
//	cosmcli -timeout 5s describe cosm://.../CarRentalService
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"cosm/internal/genclient"
	"cosm/internal/match"
	"cosm/internal/obs"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/trader"
	"cosm/internal/uiform"
	"cosm/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cosmcli:", err)
		os.Exit(1)
	}
}

func usage() error {
	return fmt.Errorf("usage: cosmcli [-timeout d] <describe|ui|browse|invoke|session|repl|import|links|dump|restore|stats|events|trace> <ref> [args...]")
}

func run(args []string) error {
	return runWithInput(args, os.Stdin)
}

func runWithInput(args []string, stdin io.Reader) error {
	global := flag.NewFlagSet("cosmcli", flag.ContinueOnError)
	timeout := global.Duration("timeout", 0, "deadline for the whole command, propagated on the wire (0 = none; per invocation in the repl)")
	if err := global.Parse(args); err != nil {
		return err
	}
	args = global.Args()
	if len(args) < 2 {
		return usage()
	}
	cmd, refText := args[0], args[1]
	if cmd == "stats" {
		// The argument is the daemon's -metrics-addr (plain HTTP), not
		// a cosm:// reference, so it must not go through ref.Parse.
		return stats(os.Stdout, refText, *timeout)
	}
	if cmd == "events" {
		return events(os.Stdout, args[1:], *timeout)
	}
	if cmd == "trace" {
		if len(args) < 3 {
			return fmt.Errorf("usage: cosmcli trace <metrics-addr...> <trace-id>")
		}
		return traceTree(os.Stdout, args[1:len(args)-1], args[len(args)-1], *timeout)
	}
	target, err := ref.Parse(refText)
	if err != nil {
		return err
	}
	rest := args[2:]

	pool := wire.NewPool()
	defer pool.Close()
	gc := genclient.New(pool)
	// The command is the importer entry point: it mints the root trace
	// that every daemon touched below logs under.
	ctx, _ := obs.EnsureTrace(context.Background())
	if *timeout > 0 && cmd != "repl" {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	switch cmd {
	case "describe":
		b, err := gc.Bind(ctx, target)
		if err != nil {
			return err
		}
		fmt.Print(b.SID().IDL())
		return nil

	case "ui":
		b, err := gc.Bind(ctx, target)
		if err != nil {
			return err
		}
		fmt.Print(b.RenderUI())
		return nil

	case "browse":
		keyword := ""
		if len(rest) > 0 {
			keyword = rest[0]
		}
		entries, err := gc.Browse(ctx, target, keyword)
		if err != nil {
			return err
		}
		if len(entries) == 0 {
			fmt.Println("no services found")
			return nil
		}
		for _, e := range entries {
			fmt.Printf("%-28s %s  (%d ops)\n", e.Name, e.Ref, len(e.SID.Ops))
			if e.SID.Doc != "" {
				fmt.Printf("    %s\n", strings.ReplaceAll(e.SID.Doc, "\n", " "))
			}
		}
		return nil

	case "invoke":
		if len(rest) < 1 {
			return fmt.Errorf("usage: cosmcli invoke <ref> <op> [path=value ...]")
		}
		b, err := gc.Bind(ctx, target)
		if err != nil {
			return err
		}
		return invokeOne(ctx, b, rest[0], rest[1:])

	case "session":
		// Each argument is one invocation: "Op path=value path=value".
		b, err := gc.Bind(ctx, target)
		if err != nil {
			return err
		}
		for _, step := range rest {
			fields := strings.Fields(step)
			if len(fields) == 0 {
				continue
			}
			if err := invokeOne(ctx, b, fields[0], fields[1:]); err != nil {
				return err
			}
		}
		return nil

	case "repl":
		b, err := gc.Bind(ctx, target)
		if err != nil {
			return err
		}
		return repl(ctx, b, stdin, *timeout)

	case "import":
		fs := flag.NewFlagSet("import", flag.ContinueOnError)
		constraint := fs.String("constraint", "", "attribute constraint expression")
		policy := fs.String("policy", "", "selection policy (first|random|score|min:P|max:P)")
		maxN := fs.Int("max", 0, "maximum offers (0 = all)")
		hops := fs.Int("hops", 0, "federation hop limit")
		maxPeers := fs.Int("max-peers", 0, "partner traders consulted per federation hop (0 = all eligible)")
		hedge := fs.Duration("hedge", 0, "query one backup peer if the scatter runs longer than this (0 = off)")
		conformant := fs.Bool("conformant", false, "also match conformant subtypes of the requested type")
		minGrade := fs.String("min-grade", "", "minimum semantic grade (exact|subtype|partial-attribute)")
		if len(rest) < 1 {
			return fmt.Errorf("usage: cosmcli import <trader-ref> <service-type> [flags]")
		}
		serviceType := rest[0]
		if err := fs.Parse(rest[1:]); err != nil {
			return err
		}
		opts := []trader.ImportOption{
			trader.Where(*constraint), trader.OrderBy(*policy),
			trader.Limit(*maxN), trader.Hops(*hops),
			trader.MaxPeers(*maxPeers), trader.Hedge(*hedge),
		}
		if *conformant {
			opts = append(opts, trader.Conformant())
		}
		if *minGrade != "" {
			g, err := match.ParseGrade(*minGrade)
			if err != nil {
				return err
			}
			opts = append(opts, trader.MinGrade(g))
		}
		tc, err := trader.DialTrader(ctx, pool, target)
		if err != nil {
			return err
		}
		matches, err := tc.ImportGradedWith(ctx, serviceType, opts...)
		if err != nil {
			return err
		}
		if len(matches) == 0 {
			fmt.Println("no matching offers")
			return nil
		}
		for _, m := range matches {
			grade := m.Grade.String()
			if grade == "" {
				grade = "ungraded"
			}
			fmt.Printf("%-14s %-24s %-17s %5.2f  %s\n", m.ID, m.Type, grade, m.Score, m.Ref)
			for _, name := range sortedKeys(m.Props) {
				fmt.Printf("    %s = %s\n", name, m.Props[name])
			}
		}
		return nil

	case "links":
		tc, err := trader.DialTrader(ctx, pool, target)
		if err != nil {
			return err
		}
		return links(ctx, os.Stdout, tc, rest)

	case "dump":
		tc, err := trader.DialTrader(ctx, pool, target)
		if err != nil {
			return err
		}
		return dump(ctx, os.Stdout, tc)

	case "restore":
		if len(rest) < 1 {
			return fmt.Errorf("usage: cosmcli restore <trader-ref> <dump.json|->")
		}
		tc, err := trader.DialTrader(ctx, pool, target)
		if err != nil {
			return err
		}
		var data []byte
		if rest[0] == "-" {
			data, err = io.ReadAll(stdin)
		} else {
			data, err = os.ReadFile(rest[0])
		}
		if err != nil {
			return err
		}
		return restore(ctx, os.Stdout, tc, data)

	default:
		return usage()
	}
}

// links manages a trader's federation link registry over the wire:
// list (default), add <name> <peer-ref>, remove <name>.
func links(ctx context.Context, w io.Writer, tc *trader.Client, args []string) error {
	sub := "list"
	if len(args) > 0 {
		sub = args[0]
	}
	switch sub {
	case "list":
		infos, err := tc.LinkList(ctx)
		if err != nil {
			return err
		}
		if len(infos) == 0 {
			fmt.Fprintln(w, "no federation links")
			return nil
		}
		fmt.Fprintf(w, "%-16s %-10s %-6s %-8s %-10s %s\n",
			"NAME", "STATE", "HOPS", "TYPES", "SUMMARY", "PEER")
		for _, li := range infos {
			summary := "never"
			if li.SummaryAge >= 0 {
				summary = li.SummaryAge.Round(time.Millisecond).String() + " ago"
			}
			fmt.Fprintf(w, "%-16s %-10s %-6d %-8d %-10s %s\n",
				li.Name, li.State, li.Hops, li.SummaryTypes, summary, li.PeerID)
		}
		return nil
	case "add":
		if len(args) != 3 {
			return fmt.Errorf("usage: cosmcli links <trader-ref> add <name> <peer-ref>")
		}
		peer, err := ref.Parse(args[2])
		if err != nil {
			return err
		}
		if err := tc.LinkAdd(ctx, args[1], peer); err != nil {
			return err
		}
		fmt.Fprintf(w, "linked %q -> %s\n", args[1], peer)
		return nil
	case "remove":
		if len(args) != 2 {
			return fmt.Errorf("usage: cosmcli links <trader-ref> remove <name>")
		}
		if err := tc.LinkRemove(ctx, args[1]); err != nil {
			return err
		}
		fmt.Fprintf(w, "removed link %q\n", args[1])
		return nil
	default:
		return fmt.Errorf("usage: cosmcli links <trader-ref> [list|add <name> <peer-ref>|remove <name>]")
	}
}

// dumpDoc is the dump file format: the trader's live offers in their
// canonical durable form (see trader.OfferRecord), sorted by ID.
type dumpDoc struct {
	Offers []trader.OfferRecord `json:"offers"`
}

// dump writes every live offer at the trader as JSON on w. It imports
// each registered service type unconstrained; an offer exported under a
// subtype also matches imports of its supertypes, so offers are deduped
// by their trader-assigned ID.
func dump(ctx context.Context, w io.Writer, tc *trader.Client) error {
	names, err := tc.TypeNames(ctx)
	if err != nil {
		return err
	}
	seen := map[string]bool{}
	doc := dumpDoc{Offers: []trader.OfferRecord{}}
	for _, name := range names {
		offers, err := tc.ImportWith(ctx, name)
		if err != nil {
			return fmt.Errorf("dump type %s: %w", name, err)
		}
		for _, o := range offers {
			if seen[o.ID] {
				continue
			}
			seen[o.ID] = true
			doc.Offers = append(doc.Offers, o.Record())
		}
	}
	sort.Slice(doc.Offers, func(i, j int) bool { return doc.Offers[i].ID < doc.Offers[j].ID })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// restore re-exports a dump at the trader in one ExportAll batch (all
// or nothing). Leased offers keep their absolute expiry instant: the
// remaining TTL is recomputed from the recorded expiry, and offers
// whose leases have already run out are skipped, not resurrected.
func restore(ctx context.Context, w io.Writer, tc *trader.Client, data []byte) error {
	var doc dumpDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("restore: %w", err)
	}
	now := time.Now()
	items := make([]trader.ExportItem, 0, len(doc.Offers))
	expired := 0
	for _, rec := range doc.Offers {
		o, err := trader.OfferFromRecord(rec)
		if err != nil {
			return fmt.Errorf("restore: %w", err)
		}
		item := trader.ExportItem{Type: o.Type, Ref: o.Ref}
		if !o.Expires.IsZero() {
			ttl := o.Expires.Sub(now)
			if ttl <= 0 {
				expired++
				continue
			}
			item.TTL = ttl
		}
		for _, name := range sortedKeys(o.Props) {
			item.Props = append(item.Props, sidl.Property{Name: name, Value: o.Props[name]})
		}
		items = append(items, item)
	}
	ids := []string{}
	if len(items) > 0 {
		var err error
		ids, err = tc.ExportAll(ctx, items)
		if err != nil {
			return fmt.Errorf("restore: %w", err)
		}
	}
	fmt.Fprintf(w, "restored %d offers", len(ids))
	if expired > 0 {
		fmt.Fprintf(w, " (%d expired, skipped)", expired)
	}
	fmt.Fprintln(w)
	return nil
}

// repl is the interactive generic client of the paper's user level: the
// human browses the generated user interface and drives the service by
// hand, with the FSM restricting what is offered at each step. A
// non-zero timeout bounds each invocation (a whole-session deadline
// would expire while the human is thinking).
func repl(ctx context.Context, b *genclient.Binding, stdin io.Reader, timeout time.Duration) error {
	fmt.Printf("bound to %s (%s) — 'help' for commands\n", b.SID().ServiceName, b.Ref())
	printPrompt(b)
	scanner := bufio.NewScanner(stdin)
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		fields := strings.Fields(line)
		if len(fields) == 0 {
			printPrompt(b)
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			fmt.Println("bye")
			return nil
		case "help":
			fmt.Println(`commands:
  ui                      render the generated user interface
  ops                     list operations (legal ones marked *)
  state                   show the communication state
  <Op> [path=value ...]   invoke an operation
  quit`)
		case "ui":
			fmt.Print(b.RenderUI())
		case "ops":
			allowed := map[string]bool{}
			for _, op := range b.AllowedOps() {
				allowed[op] = true
			}
			for _, op := range b.SID().Ops {
				marker := " "
				if b.AllowedOps() == nil || allowed[op.Name] {
					marker = "*"
				}
				fmt.Printf("  %s %-16s %s\n", marker, op.Name, op.Doc)
			}
		case "state":
			if s := b.State(); s != "" {
				fmt.Printf("state %s; allowed: %s\n", s, strings.Join(b.AllowedOps(), ", "))
			} else {
				fmt.Println("unrestricted protocol")
			}
		default:
			ictx, cancel := ctx, context.CancelFunc(func() {})
			if timeout > 0 {
				ictx, cancel = context.WithTimeout(ctx, timeout)
			}
			err := invokeOne(ictx, b, fields[0], fields[1:])
			cancel()
			if err != nil {
				fmt.Println("error:", err)
			}
		}
		printPrompt(b)
	}
	return scanner.Err()
}

func printPrompt(b *genclient.Binding) {
	if s := b.State(); s != "" {
		fmt.Printf("[%s] > ", s)
		return
	}
	fmt.Print("> ")
}

func invokeOne(ctx context.Context, b *genclient.Binding, op string, assignments []string) error {
	inputs := map[string]string{}
	for _, a := range assignments {
		path, value, ok := strings.Cut(a, "=")
		if !ok {
			return fmt.Errorf("argument %q is not path=value", a)
		}
		inputs[path] = value
	}
	res, err := b.InvokeForm(ctx, op, inputs)
	if err != nil {
		return err
	}
	// Return values are presented the same way the entry form presents
	// parameters (section 4.2).
	opSig, ok := b.SID().Op(op)
	if ok && (res.Value != nil || len(res.Outs) > 0) {
		fmt.Print(uiform.RenderResult(b.SID().ServiceName, opSig, res.Value, res.Outs))
	} else {
		fmt.Printf("%s => ok\n", op)
	}
	if state := b.State(); state != "" {
		fmt.Printf("  [state: %s; allowed: %s]\n", state, strings.Join(b.AllowedOps(), ", "))
	}
	return nil
}

// stats fetches a daemon's /debug/vars introspection document and
// prints it as a flat, sorted metric listing. addr is the value the
// daemon was given as -metrics-addr.
func stats(w io.Writer, addr string, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	url := "http://" + strings.TrimPrefix(addr, "http://") + "/debug/vars"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %s", url, resp.Status)
	}
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("%s: %w", url, err)
	}

	if g, ok := doc["goroutines"]; ok {
		fmt.Fprintf(w, "%-40s %v\n", "goroutines", g)
	}
	if ms, ok := doc["memstats"].(map[string]any); ok {
		for _, k := range []string{"HeapAlloc", "HeapObjects", "NumGC"} {
			if v, ok := ms[k]; ok {
				fmt.Fprintf(w, "%-40s %v\n", "memstats."+k, v)
			}
		}
	}
	metrics, _ := doc["cosm"].(map[string]any)
	for _, name := range sortedKeys(metrics) {
		printMetric(w, name, metrics[name])
	}
	return nil
}

// fetchJSON GETs http://addr+path and decodes the response into out.
func fetchJSON(addr, path string, timeout time.Duration, out any) error {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	url := "http://" + strings.TrimPrefix(addr, "http://") + path
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: HTTP %s", url, resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("%s: %w", url, err)
	}
	return nil
}

// events merges the /debug/events timelines of several daemons into one
// chronological cluster view. Unreachable daemons are reported and
// skipped — a post-mortem must work while part of the cluster is down.
func events(w io.Writer, addrs []string, timeout time.Duration) error {
	if len(addrs) == 0 {
		return fmt.Errorf("usage: cosmcli events <metrics-addr...>")
	}
	var logs [][]obs.Event
	for _, addr := range addrs {
		var doc struct {
			Events []obs.Event `json:"events"`
		}
		if err := fetchJSON(addr, "/debug/events", timeout, &doc); err != nil {
			fmt.Fprintf(w, "# %s: %v\n", addr, err)
			continue
		}
		for i := range doc.Events {
			if doc.Events[i].Node == "" {
				doc.Events[i].Node = addr
			}
		}
		logs = append(logs, doc.Events)
	}
	for _, e := range obs.MergeEvents(logs...) {
		fmt.Fprintf(w, "%s %-12s %-18s", e.Time.Format("15:04:05.000"), e.Node, e.Kind)
		for _, k := range sortedKeys(anyAttrs(e.Attr)) {
			fmt.Fprintf(w, " %s=%s", k, e.Attr[k])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// anyAttrs widens a string map for sortedKeys.
func anyAttrs(m map[string]string) map[string]any {
	out := make(map[string]any, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// traceTree gathers the flight-recorder spans for one trace ID from
// every listed daemon — each holds only the hops it served — and prints
// the reassembled cross-process call tree as JSON.
func traceTree(w io.Writer, addrs []string, id string, timeout time.Duration) error {
	var spans []obs.Span
	for _, addr := range addrs {
		var doc struct {
			Spans []obs.Span `json:"spans"`
		}
		if err := fetchJSON(addr, "/debug/traces?id="+id, timeout, &doc); err != nil {
			fmt.Fprintf(os.Stderr, "cosmcli: %s: %v\n", addr, err)
			continue
		}
		for i := range doc.Spans {
			if doc.Spans[i].Node == "" {
				doc.Spans[i].Node = addr
			}
		}
		spans = append(spans, doc.Spans...)
	}
	if len(spans) == 0 {
		return fmt.Errorf("trace %s: no spans found at %s", id, strings.Join(addrs, ", "))
	}
	roots := obs.BuildSpanTree(spans)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Trace string          `json:"trace"`
		Spans int             `json:"spans"`
		Roots []*obs.SpanNode `json:"roots"`
	}{Trace: id, Spans: len(spans), Roots: roots})
}

// printMetric flattens one /debug/vars entry: scalars print directly,
// histograms become count/p50/p95/p99 lines, and vecs recurse with the
// label folded into the name.
func printMetric(w io.Writer, name string, v any) {
	m, ok := v.(map[string]any)
	if !ok {
		fmt.Fprintf(w, "%-40s %v\n", name, v)
		return
	}
	if _, isHist := m["p99"]; isHist {
		for _, q := range []string{"count", "p50", "p95", "p99"} {
			fmt.Fprintf(w, "%-40s %v\n", name+"."+q, m[q])
		}
		return
	}
	for _, label := range sortedKeys(m) {
		printMetric(w, name+"{"+label+"}", m[label])
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
