package main

import (
	"context"
	"errors"
	"io"
	"os"
	"strings"
	"testing"

	"cosm/internal/browser"
	"cosm/internal/carrental"
	"cosm/internal/cosm"
	"cosm/internal/sidl"
	"cosm/internal/trader"
	"cosm/internal/typemgr"
)

// startMarket hosts a car rental, browser and trader on one loopback
// node and returns their reference strings.
func startMarket(t *testing.T, loopName string) (carRef, browserRef, traderRef string) {
	t.Helper()
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))

	svc, impl, err := carrental.New()
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Host("CarRentalService", svc); err != nil {
		t.Fatal(err)
	}

	dir := browser.NewDirectory()
	bsvc, err := browser.NewService(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Host(browser.ServiceName, bsvc); err != nil {
		t.Fatal(err)
	}

	repo := typemgr.NewRepo()
	st, err := typemgr.FromSID(sidl.CarRentalSID())
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Define(st); err != nil {
		t.Fatal(err)
	}
	tr := trader.New("cli-test", repo)
	tsvc, err := trader.NewService(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Host(trader.ServiceName, tsvc); err != nil {
		t.Fatal(err)
	}

	if _, err := node.ListenAndServe("loop:" + loopName); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })

	self := node.MustRefFor("CarRentalService")
	if err := dir.Register(impl.SID(), self); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ExportSID(impl.SID(), self); err != nil {
		t.Fatal(err)
	}
	return self.String(),
		node.MustRefFor(browser.ServiceName).String(),
		node.MustRefFor(trader.ServiceName).String()
}

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string, 1)
	go func() {
		var b strings.Builder
		_, _ = io.Copy(&b, r)
		done <- b.String()
	}()
	runErr := f()
	_ = w.Close()
	return <-done, runErr
}

func TestDescribe(t *testing.T) {
	carRef, _, _ := startMarket(t, "cli-describe")
	out, err := capture(t, func() error { return run([]string{"describe", carRef}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"module CarRentalService {", "module COSM_FSM {"} {
		if !strings.Contains(out, want) {
			t.Fatalf("describe output lacks %q:\n%s", want, out)
		}
	}
}

func TestUICommand(t *testing.T) {
	carRef, _, _ := startMarket(t, "cli-ui")
	out, err := capture(t, func() error { return run([]string{"ui", carRef}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[ Invoke SelectCar ]") {
		t.Fatalf("ui output lacks invoke button:\n%s", out)
	}
}

func TestBrowseCommand(t *testing.T) {
	_, browserRef, _ := startMarket(t, "cli-browse")
	out, err := capture(t, func() error { return run([]string{"browse", browserRef, "rent"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CarRentalService") {
		t.Fatalf("browse output = %q", out)
	}
	out, err = capture(t, func() error { return run([]string{"browse", browserRef, "zeppelin"}) })
	if err != nil || !strings.Contains(out, "no services found") {
		t.Fatalf("browse(zeppelin) = %q, %v", out, err)
	}
}

func TestInvokeCommand(t *testing.T) {
	carRef, _, _ := startMarket(t, "cli-invoke")
	out, err := capture(t, func() error {
		return run([]string{"invoke", carRef, "SelectCar",
			"SelectCar.selection.model=FIAT_Uno",
			"SelectCar.selection.days=3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "charge: 240") {
		t.Fatalf("invoke output = %q", out)
	}
	if !strings.Contains(out, "[state: SELECTED;") {
		t.Fatalf("invoke output lacks FSM state: %q", out)
	}
}

func TestSessionCommand(t *testing.T) {
	carRef, _, _ := startMarket(t, "cli-session")
	out, err := capture(t, func() error {
		return run([]string{"session", carRef,
			"SelectCar SelectCar.selection.model=VW_Golf SelectCar.selection.days=2",
			"Commit"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "confirmation:") || !strings.Contains(out, "VW_Golf-2d") {
		t.Fatalf("session output = %q", out)
	}
}

func TestSessionProtocolViolation(t *testing.T) {
	carRef, _, _ := startMarket(t, "cli-protocol")
	_, err := capture(t, func() error { return run([]string{"invoke", carRef, "Commit"}) })
	if err == nil || !strings.Contains(err.Error(), "protocol violation") {
		t.Fatalf("err = %v", err)
	}
}

func TestImportCommand(t *testing.T) {
	_, _, traderRef := startMarket(t, "cli-import")
	out, err := capture(t, func() error {
		return run([]string{"import", traderRef, "CarRentalService",
			"-constraint", "ChargePerDay < 100", "-policy", "min:ChargePerDay"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CarRentalService") || !strings.Contains(out, "ChargePerDay = 80") {
		t.Fatalf("import output = %q", out)
	}
	out, err = capture(t, func() error {
		return run([]string{"import", traderRef, "CarRentalService", "-constraint", "ChargePerDay > 1000"})
	})
	if err != nil || !strings.Contains(out, "no matching offers") {
		t.Fatalf("import(no match) = %q, %v", out, err)
	}
}

func TestTimeoutFlag(t *testing.T) {
	carRef, _, traderRef := startMarket(t, "cli-timeout")
	// A generous timeout leaves the commands unaffected...
	out, err := capture(t, func() error {
		return run([]string{"-timeout", "30s", "describe", carRef})
	})
	if err != nil || !strings.Contains(out, "module CarRentalService {") {
		t.Fatalf("describe with timeout = %q, %v", out, err)
	}
	// ...while an already-expired one fails every subcommand up front:
	// the deadline is checked before the request is even sent.
	for _, args := range [][]string{
		{"-timeout", "1ns", "describe", carRef},
		{"-timeout", "1ns", "invoke", carRef, "SelectCar"},
		{"-timeout", "1ns", "import", traderRef, "CarRentalService"},
	} {
		if _, err := capture(t, func() error { return run(args) }); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("run(%v) = %v, want deadline exceeded", args, err)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	carRef, _, _ := startMarket(t, "cli-errors")
	cases := [][]string{
		nil,
		{"describe"},
		{"describe", "not-a-ref"},
		{"frobnicate", carRef},
		{"invoke", carRef},
		{"invoke", carRef, "SelectCar", "novalue"},
		{"import", carRef},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Fatalf("run(%v) should fail", args)
		}
	}
}

func TestReplSession(t *testing.T) {
	carRef, _, _ := startMarket(t, "cli-repl")
	script := strings.Join([]string{
		"help",
		"ops",
		"state",
		"Commit", // illegal in INIT: printed error, session continues
		"SelectCar SelectCar.selection.model=FIAT_Uno SelectCar.selection.days=2",
		"state",
		"Commit",
		"ui",
		"quit",
	}, "\n")
	out, err := capture(t, func() error {
		return runWithInput([]string{"repl", carRef}, strings.NewReader(script))
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"bound to CarRentalService",
		"* SelectCar",
		"state INIT; allowed: SelectCar",
		"error:", // the intercepted Commit
		"charge: 160",
		"state SELECTED",
		"confirmation:",
		"[ Invoke SelectCar ]",
		"bye",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("repl output lacks %q:\n%s", want, out)
		}
	}
}

func TestReplEOFEndsCleanly(t *testing.T) {
	carRef, _, _ := startMarket(t, "cli-repl-eof")
	if _, err := capture(t, func() error {
		return runWithInput([]string{"repl", carRef}, strings.NewReader("state\n"))
	}); err != nil {
		t.Fatal(err)
	}
}
