package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cosm/internal/browser"
	"cosm/internal/carrental"
	"cosm/internal/cosm"
	"cosm/internal/obs"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/trader"
	"cosm/internal/typemgr"
)

// startMarket hosts a car rental, browser and trader on one loopback
// node and returns their reference strings.
func startMarket(t *testing.T, loopName string) (carRef, browserRef, traderRef string) {
	t.Helper()
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))

	svc, impl, err := carrental.New()
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Host("CarRentalService", svc); err != nil {
		t.Fatal(err)
	}

	dir := browser.NewDirectory()
	bsvc, err := browser.NewService(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Host(browser.ServiceName, bsvc); err != nil {
		t.Fatal(err)
	}

	repo := typemgr.NewRepo()
	st, err := typemgr.FromSID(sidl.CarRentalSID())
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Define(st); err != nil {
		t.Fatal(err)
	}
	tr := trader.New("cli-test", repo)
	tsvc, err := trader.NewService(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Host(trader.ServiceName, tsvc); err != nil {
		t.Fatal(err)
	}

	if _, err := node.ListenAndServe("loop:" + loopName); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })

	self := node.MustRefFor("CarRentalService")
	if err := dir.Register(impl.SID(), self); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.ExportSID(impl.SID(), self); err != nil {
		t.Fatal(err)
	}
	return self.String(),
		node.MustRefFor(browser.ServiceName).String(),
		node.MustRefFor(trader.ServiceName).String()
}

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string, 1)
	go func() {
		var b strings.Builder
		_, _ = io.Copy(&b, r)
		done <- b.String()
	}()
	runErr := f()
	_ = w.Close()
	return <-done, runErr
}

func TestDescribe(t *testing.T) {
	carRef, _, _ := startMarket(t, "cli-describe")
	out, err := capture(t, func() error { return run([]string{"describe", carRef}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"module CarRentalService {", "module COSM_FSM {"} {
		if !strings.Contains(out, want) {
			t.Fatalf("describe output lacks %q:\n%s", want, out)
		}
	}
}

func TestUICommand(t *testing.T) {
	carRef, _, _ := startMarket(t, "cli-ui")
	out, err := capture(t, func() error { return run([]string{"ui", carRef}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "[ Invoke SelectCar ]") {
		t.Fatalf("ui output lacks invoke button:\n%s", out)
	}
}

func TestBrowseCommand(t *testing.T) {
	_, browserRef, _ := startMarket(t, "cli-browse")
	out, err := capture(t, func() error { return run([]string{"browse", browserRef, "rent"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CarRentalService") {
		t.Fatalf("browse output = %q", out)
	}
	out, err = capture(t, func() error { return run([]string{"browse", browserRef, "zeppelin"}) })
	if err != nil || !strings.Contains(out, "no services found") {
		t.Fatalf("browse(zeppelin) = %q, %v", out, err)
	}
}

func TestInvokeCommand(t *testing.T) {
	carRef, _, _ := startMarket(t, "cli-invoke")
	out, err := capture(t, func() error {
		return run([]string{"invoke", carRef, "SelectCar",
			"SelectCar.selection.model=FIAT_Uno",
			"SelectCar.selection.days=3"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "charge: 240") {
		t.Fatalf("invoke output = %q", out)
	}
	if !strings.Contains(out, "[state: SELECTED;") {
		t.Fatalf("invoke output lacks FSM state: %q", out)
	}
}

func TestSessionCommand(t *testing.T) {
	carRef, _, _ := startMarket(t, "cli-session")
	out, err := capture(t, func() error {
		return run([]string{"session", carRef,
			"SelectCar SelectCar.selection.model=VW_Golf SelectCar.selection.days=2",
			"Commit"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "confirmation:") || !strings.Contains(out, "VW_Golf-2d") {
		t.Fatalf("session output = %q", out)
	}
}

func TestSessionProtocolViolation(t *testing.T) {
	carRef, _, _ := startMarket(t, "cli-protocol")
	_, err := capture(t, func() error { return run([]string{"invoke", carRef, "Commit"}) })
	if err == nil || !strings.Contains(err.Error(), "protocol violation") {
		t.Fatalf("err = %v", err)
	}
}

func TestImportCommand(t *testing.T) {
	_, _, traderRef := startMarket(t, "cli-import")
	out, err := capture(t, func() error {
		return run([]string{"import", traderRef, "CarRentalService",
			"-constraint", "ChargePerDay < 100", "-policy", "min:ChargePerDay"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CarRentalService") || !strings.Contains(out, "ChargePerDay = 80") {
		t.Fatalf("import output = %q", out)
	}
	out, err = capture(t, func() error {
		return run([]string{"import", traderRef, "CarRentalService", "-constraint", "ChargePerDay > 1000"})
	})
	if err != nil || !strings.Contains(out, "no matching offers") {
		t.Fatalf("import(no match) = %q, %v", out, err)
	}
}

func TestImportGradedFlags(t *testing.T) {
	_, _, traderRef := startMarket(t, "cli-graded")
	out, err := capture(t, func() error {
		return run([]string{"import", traderRef, "CarRentalService",
			"-conformant", "-min-grade", "exact", "-policy", "score"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "exact") || !strings.Contains(out, "1.00") {
		t.Fatalf("graded import output lacks grade/score columns: %q", out)
	}
	if _, err := capture(t, func() error {
		return run([]string{"import", traderRef, "CarRentalService", "-min-grade", "bogus"})
	}); err == nil {
		t.Fatal("bogus -min-grade must fail")
	}
}

func TestStatsSurfacesMatchGrades(t *testing.T) {
	reg := obs.NewRegistry()
	repo := typemgr.NewRepo()
	st, err := typemgr.FromSID(sidl.CarRentalSID())
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Define(st); err != nil {
		t.Fatal(err)
	}
	tr := trader.New("cli-stats", repo, trader.WithMetrics(reg))
	_, impl, err := carrental.New()
	if err != nil {
		t.Fatal(err)
	}
	self := ref.New("loop:cli-stats", "CarRentalService")
	if _, err := tr.ExportSID(impl.SID(), self); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.Import(context.Background(), trader.ImportRequest{Type: "CarRentalService"}); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(obs.Handler(reg, func() error { return nil }))
	defer srv.Close()
	var buf strings.Builder
	if err := stats(&buf, strings.TrimPrefix(srv.URL, "http://"), time.Second); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "cosm_trader_match_grade_total{exact}") {
		t.Fatalf("stats output lacks grade counter:\n%s", buf.String())
	}
}

func TestTimeoutFlag(t *testing.T) {
	carRef, _, traderRef := startMarket(t, "cli-timeout")
	// A generous timeout leaves the commands unaffected...
	out, err := capture(t, func() error {
		return run([]string{"-timeout", "30s", "describe", carRef})
	})
	if err != nil || !strings.Contains(out, "module CarRentalService {") {
		t.Fatalf("describe with timeout = %q, %v", out, err)
	}
	// ...while an already-expired one fails every subcommand up front:
	// the deadline is checked before the request is even sent.
	for _, args := range [][]string{
		{"-timeout", "1ns", "describe", carRef},
		{"-timeout", "1ns", "invoke", carRef, "SelectCar"},
		{"-timeout", "1ns", "import", traderRef, "CarRentalService"},
	} {
		if _, err := capture(t, func() error { return run(args) }); !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("run(%v) = %v, want deadline exceeded", args, err)
		}
	}
}

func TestCLIErrors(t *testing.T) {
	carRef, _, _ := startMarket(t, "cli-errors")
	cases := [][]string{
		nil,
		{"describe"},
		{"describe", "not-a-ref"},
		{"frobnicate", carRef},
		{"invoke", carRef},
		{"invoke", carRef, "SelectCar", "novalue"},
		{"import", carRef},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Fatalf("run(%v) should fail", args)
		}
	}
}

func TestReplSession(t *testing.T) {
	carRef, _, _ := startMarket(t, "cli-repl")
	script := strings.Join([]string{
		"help",
		"ops",
		"state",
		"Commit", // illegal in INIT: printed error, session continues
		"SelectCar SelectCar.selection.model=FIAT_Uno SelectCar.selection.days=2",
		"state",
		"Commit",
		"ui",
		"quit",
	}, "\n")
	out, err := capture(t, func() error {
		return runWithInput([]string{"repl", carRef}, strings.NewReader(script))
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"bound to CarRentalService",
		"* SelectCar",
		"state INIT; allowed: SelectCar",
		"error:", // the intercepted Commit
		"charge: 160",
		"state SELECTED",
		"confirmation:",
		"[ Invoke SelectCar ]",
		"bye",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("repl output lacks %q:\n%s", want, out)
		}
	}
}

func TestReplEOFEndsCleanly(t *testing.T) {
	carRef, _, _ := startMarket(t, "cli-repl-eof")
	if _, err := capture(t, func() error {
		return runWithInput([]string{"repl", carRef}, strings.NewReader("state\n"))
	}); err != nil {
		t.Fatal(err)
	}
}

// startTrader hosts a bare trader (CarRentalService type predefined) on
// its own loopback node and returns its reference string plus the
// in-process trader for direct inspection.
func startTrader(t *testing.T, loopName, id string) (string, *trader.Trader) {
	t.Helper()
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	repo := typemgr.NewRepo()
	st, err := typemgr.FromSID(sidl.CarRentalSID())
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.Define(st); err != nil {
		t.Fatal(err)
	}
	tr := trader.New(id, repo)
	tsvc, err := trader.NewService(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Host(trader.ServiceName, tsvc); err != nil {
		t.Fatal(err)
	}
	// Wire-level LinkAdd resolves peer refs through this node's pool,
	// exactly like traderd.
	tr.SetLinkDialer(func(ctx context.Context, peer ref.ServiceRef) (trader.Federate, error) {
		return trader.DialTrader(ctx, node.Pool(), peer)
	})
	if _, err := node.ListenAndServe("loop:" + loopName); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = node.Close() })
	return node.MustRefFor(trader.ServiceName).String(), tr
}

// The links subcommand drives the trader's link registry end to end:
// add, list (before and after gossip), a routed federated import with
// the new scatter flags, and remove.
func TestLinksCommand(t *testing.T) {
	hubRef, hub := startTrader(t, "cli-links-hub", "hub")
	peerRef, peer := startTrader(t, "cli-links-peer", "peer-1")

	if _, err := peer.Export("CarRentalService",
		ref.New("tcp:10.9.3.1:7000", "CarRentalService"), rentalProps("FIAT_Uno", 42)); err != nil {
		t.Fatal(err)
	}

	out, err := capture(t, func() error { return run([]string{"links", hubRef}) })
	if err != nil || !strings.Contains(out, "no federation links") {
		t.Fatalf("links list (empty) = %q, %v", out, err)
	}

	out, err = capture(t, func() error { return run([]string{"links", hubRef, "add", "p1", peerRef}) })
	if err != nil || !strings.Contains(out, `linked "p1"`) {
		t.Fatalf("links add = %q, %v", out, err)
	}
	if _, err := capture(t, func() error { return run([]string{"links", hubRef, "add", "p1", peerRef}) }); err == nil {
		t.Fatal("duplicate links add should fail")
	}

	out, err = capture(t, func() error { return run([]string{"links", hubRef}) })
	if err != nil || !strings.Contains(out, "p1") || !strings.Contains(out, "closed") || !strings.Contains(out, "never") {
		t.Fatalf("links list = %q, %v", out, err)
	}

	if pushed, failed := hub.GossipRound(context.Background(), time.Second); pushed != 1 || failed != 0 {
		t.Fatalf("gossip round: pushed %d failed %d", pushed, failed)
	}
	out, err = capture(t, func() error { return run([]string{"links", hubRef}) })
	if err != nil || !strings.Contains(out, "peer-1") || strings.Contains(out, "never") {
		t.Fatalf("links list after gossip = %q, %v", out, err)
	}

	out, err = capture(t, func() error {
		return run([]string{"import", hubRef, "CarRentalService",
			"-hops", "1", "-max-peers", "2", "-hedge", "100ms"})
	})
	if err != nil || !strings.Contains(out, "FIAT_Uno") {
		t.Fatalf("federated import = %q, %v", out, err)
	}
	if st := hub.FedStats(); st.Routed != 1 {
		t.Fatalf("fed stats = %+v, want one routed fan-out", st)
	}

	out, err = capture(t, func() error { return run([]string{"links", hubRef, "remove", "p1"}) })
	if err != nil || !strings.Contains(out, `removed link "p1"`) {
		t.Fatalf("links remove = %q, %v", out, err)
	}
	if _, err := capture(t, func() error { return run([]string{"links", hubRef, "remove", "p1"}) }); err == nil {
		t.Fatal("removing an unknown link should fail")
	}
	if _, err := capture(t, func() error { return run([]string{"links", hubRef, "frobnicate"}) }); err == nil {
		t.Fatal("unknown links subcommand should fail")
	}
}

func rentalProps(model string, charge float64) []sidl.Property {
	return []sidl.Property{
		{Name: "CarModel", Value: sidl.EnumLit(model)},
		{Name: "AverageMilage", Value: sidl.IntLit(52000)},
		{Name: "ChargePerDay", Value: sidl.FloatLit(charge)},
		{Name: "ChargeCurrency", Value: sidl.EnumLit("USD")},
	}
}

// Dump captures a trader's live offers; restore re-creates them at
// another trader with fresh IDs and equivalent leases.
func TestDumpRestoreRoundTrip(t *testing.T) {
	srcRef, src := startTrader(t, "cli-dump-src", "dump-src")
	dstRef, dst := startTrader(t, "cli-dump-dst", "dump-dst")

	if _, err := src.Export("CarRentalService",
		ref.New("tcp:10.9.0.1:7000", "CarRentalService"), rentalProps("FIAT_Uno", 49)); err != nil {
		t.Fatal(err)
	}
	if _, err := src.ExportLease("CarRentalService",
		ref.New("tcp:10.9.0.2:7000", "CarRentalService"), rentalProps("VW_Golf", 99), time.Hour); err != nil {
		t.Fatal(err)
	}

	out, err := capture(t, func() error { return run([]string{"dump", srcRef}) })
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	var doc struct {
		Offers []trader.OfferRecord `json:"offers"`
	}
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("dump output is not JSON: %v\n%s", err, out)
	}
	if len(doc.Offers) != 2 {
		t.Fatalf("dump holds %d offers, want 2", len(doc.Offers))
	}

	file := filepath.Join(t.TempDir(), "offers.json")
	if err := os.WriteFile(file, []byte(out), 0o600); err != nil {
		t.Fatal(err)
	}
	msg, err := capture(t, func() error { return run([]string{"restore", dstRef, file}) })
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !strings.Contains(msg, "restored 2 offers") {
		t.Fatalf("restore output %q", msg)
	}

	// The restored market is equivalent modulo trader-assigned IDs and
	// the lease re-anchoring: same types, refs, props; the leased offer
	// still expires.
	got, err := dst.ImportWith(context.Background(), "CarRentalService")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("restored trader serves %d offers, want 2", len(got))
	}
	byRef := map[string]trader.OfferRecord{}
	for _, o := range got {
		rec := o.Record()
		if strings.HasPrefix(rec.ID, "dump-src/") {
			t.Fatalf("restored offer kept source ID %q", rec.ID)
		}
		byRef[rec.Ref] = rec
	}
	for _, want := range doc.Offers {
		rec, ok := byRef[want.Ref]
		if !ok {
			t.Fatalf("offer for %s missing after restore", want.Ref)
		}
		if rec.Type != want.Type || fmt.Sprint(rec.Props) != fmt.Sprint(want.Props) {
			t.Fatalf("restored offer %+v, want type/props of %+v", rec, want)
		}
		if (rec.Expires != 0) != (want.Expires != 0) {
			t.Fatalf("restored offer lease %d, source %d", rec.Expires, want.Expires)
		}
	}
}

// Expired offers in a dump are skipped by restore, not resurrected;
// "-" reads the dump from stdin.
func TestRestoreSkipsExpired(t *testing.T) {
	dstRef, dst := startTrader(t, "cli-restore-expired", "restore-dst")
	past := time.Now().Add(-time.Minute).UnixNano()
	dump := fmt.Sprintf(`{"offers":[
		{"id":"x/o1","type":"CarRentalService","ref":"cosm://tcp:10.9.1.1:7000/CarRentalService",
		 "props":[{"name":"CarModel","kind":"enum","text":"FIAT_Uno"},
		          {"name":"AverageMilage","kind":"int","text":"1000"},
		          {"name":"ChargePerDay","kind":"float","text":"10"},
		          {"name":"ChargeCurrency","kind":"enum","text":"USD"}]},
		{"id":"x/o2","type":"CarRentalService","ref":"cosm://tcp:10.9.1.2:7000/CarRentalService",
		 "props":[{"name":"CarModel","kind":"enum","text":"VW_Golf"},
		          {"name":"AverageMilage","kind":"int","text":"2000"},
		          {"name":"ChargePerDay","kind":"float","text":"20"},
		          {"name":"ChargeCurrency","kind":"enum","text":"USD"}],
		 "expires":%d}]}`, past)
	msg, err := capture(t, func() error {
		return runWithInput([]string{"restore", dstRef, "-"}, strings.NewReader(dump))
	})
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !strings.Contains(msg, "restored 1 offers (1 expired, skipped)") {
		t.Fatalf("restore output %q", msg)
	}
	if n := dst.OfferCount(); n != 1 {
		t.Fatalf("trader holds %d offers, want 1", n)
	}
}

// A restore against a trader that lacks the dumped service type fails
// whole (ExportAll is all-or-nothing) with a useful error.
func TestRestoreUnknownType(t *testing.T) {
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	tr := trader.New("bare", typemgr.NewRepo())
	tsvc, err := trader.NewService(tr)
	if err != nil {
		t.Fatal(err)
	}
	if err := node.Host(trader.ServiceName, tsvc); err != nil {
		t.Fatal(err)
	}
	if _, err := node.ListenAndServe("loop:cli-restore-unknown"); err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	dump := `{"offers":[{"id":"x/o1","type":"NoSuchService","ref":"cosm://tcp:10.9.2.1:7000/NoSuchService"}]}`
	_, err = capture(t, func() error {
		return runWithInput([]string{"restore", node.MustRefFor(trader.ServiceName).String(), "-"},
			strings.NewReader(dump))
	})
	if err == nil || !strings.Contains(err.Error(), "NoSuchService") {
		t.Fatalf("restore of unknown type: err = %v", err)
	}
	if n := tr.OfferCount(); n != 0 {
		t.Fatalf("trader holds %d offers after failed restore, want 0", n)
	}
}
