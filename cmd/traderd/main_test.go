package main

import (
	"context"
	"io"
	"log"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/trader"
	"cosm/internal/wire"
)

func writeCarSIDL(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "carrental.sidl")
	if err := os.WriteFile(path, []byte(sidl.CarRentalIDL), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func dialUp(t *testing.T, pool *wire.Pool, r ref.ServiceRef) *trader.Client {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(5 * time.Second)
	for {
		tc, err := trader.DialTrader(ctx, pool, r)
		if err == nil {
			return tc
		}
		if time.Now().After(deadline) {
			t.Fatalf("trader never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDaemonPreloadsTypesAndTrades(t *testing.T) {
	log.SetOutput(io.Discard)
	defer log.SetOutput(os.Stderr)

	sig := make(chan os.Signal)
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-listen", "loop:traderd-test",
			"-id", "test-trader",
			"-type", writeCarSIDL(t),
		}, sig)
	}()

	pool := wire.NewPool()
	defer pool.Close()
	tc := dialUp(t, pool, ref.New("loop:traderd-test", trader.ServiceName))
	ctx := context.Background()

	names, err := tc.TypeNames(ctx)
	if err != nil || len(names) != 1 || names[0] != "CarRentalService" {
		t.Fatalf("TypeNames = %v, %v", names, err)
	}
	target := ref.New("tcp:p:1", "CarRentalService")
	if _, err := tc.ExportSID(ctx, sidl.CarRentalSID(), target); err != nil {
		t.Fatal(err)
	}
	offer, err := tc.ImportOneWith(ctx, "CarRentalService")
	if err != nil || offer.Ref != target {
		t.Fatalf("ImportOne = %+v, %v", offer, err)
	}

	close(sig)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestDaemonFederationViaLinkFlag(t *testing.T) {
	log.SetOutput(io.Discard)
	defer log.SetOutput(os.Stderr)
	typeFile := writeCarSIDL(t)

	// Partner trader B holding the offer.
	sigB := make(chan os.Signal)
	doneB := make(chan error, 1)
	go func() {
		doneB <- run([]string{"-listen", "loop:traderd-b", "-id", "B", "-type", typeFile}, sigB)
	}()
	pool := wire.NewPool()
	defer pool.Close()
	bRef := ref.New("loop:traderd-b", trader.ServiceName)
	tcB := dialUp(t, pool, bRef)
	ctx := context.Background()
	target := ref.New("tcp:p:9", "CarRentalService")
	if _, err := tcB.ExportSID(ctx, sidl.CarRentalSID(), target); err != nil {
		t.Fatal(err)
	}

	// Trader A linked to B.
	sigA := make(chan os.Signal)
	doneA := make(chan error, 1)
	go func() {
		doneA <- run([]string{
			"-listen", "loop:traderd-a", "-id", "A",
			"-type", typeFile,
			"-link", bRef.String(),
		}, sigA)
	}()
	tcA := dialUp(t, pool, ref.New("loop:traderd-a", trader.ServiceName))

	// A federated import at A reaches B's offer.
	offers, err := tcA.ImportWith(ctx, "CarRentalService", trader.Hops(1))
	if err != nil || len(offers) != 1 || offers[0].Ref != target {
		t.Fatalf("federated Import = %v, %v", offers, err)
	}

	close(sigA)
	if err := <-doneA; err != nil {
		t.Fatal(err)
	}
	close(sigB)
	if err := <-doneB; err != nil {
		t.Fatal(err)
	}
}

func TestDaemonErrors(t *testing.T) {
	log.SetOutput(io.Discard)
	defer log.SetOutput(os.Stderr)
	if err := run([]string{"-listen", "junk"}, nil); err == nil {
		t.Fatal("bad endpoint must fail")
	}
	if err := run([]string{"-type", "/nonexistent.sidl"}, nil); err == nil {
		t.Fatal("missing type file must fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.sidl")
	if err := os.WriteFile(bad, []byte("module X {"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-type", bad}, nil); err == nil {
		t.Fatal("unparseable type file must fail")
	}
	noTE := filepath.Join(t.TempDir(), "note.sidl")
	if err := os.WriteFile(noTE, []byte("module X { interface COSM_Operations { void F(); }; };"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-type", noTE}, nil); err == nil {
		t.Fatal("type file without trader export must fail")
	}
	if err := run([]string{"-listen", "loop:traderd-badlink", "-link", "junk"}, nil); err == nil {
		t.Fatal("bad link must fail")
	}
}
