// Command traderd runs an ODP trader daemon: the trading function of
// Fig. 1 as a network service.
//
// Usage:
//
//	traderd -listen tcp:127.0.0.1:7001 -id hamburg \
//	        -type carrental.sidl -link munich=cosm://tcp:10.0.0.2:7001/cosm.trader
//
// Service types can be preloaded from SIDL files carrying a
// COSM_TraderExport module (-type, repeatable); more types can be
// defined at run time through the management interface. Federation
// partners are linked with -link name=ref (repeatable; a bare ref gets
// a generated name) and can be managed at run time with `cosmcli
// links`. With -gossip-every the trader periodically exchanges offer
// summaries with its links, so federated imports are routed only to
// peers that plausibly hold the requested type.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cosm/internal/cosm"
	"cosm/internal/daemon"
	"cosm/internal/obs"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/trader"
	"cosm/internal/typemgr"
)

// replSyncTimeout bounds how long a mutation waits for its -repl-sync
// follower acknowledgements before failing.
const replSyncTimeout = 5 * time.Second

type stringList []string

func (l *stringList) String() string { return fmt.Sprint([]string(*l)) }
func (l *stringList) Set(s string) error {
	*l = append(*l, s)
	return nil
}

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("traderd: ")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], sig); err != nil {
		log.Fatal(err)
	}
}

// run starts the daemon and blocks until sig delivers or closes.
func run(args []string, sig <-chan os.Signal) error {
	fs := flag.NewFlagSet("traderd", flag.ContinueOnError)
	var (
		listen    = fs.String("listen", "tcp:127.0.0.1:7001", "endpoint to serve on (tcp:host:port or loop:name)")
		id        = fs.String("id", "trader-1", "federation identity (unique per federation)")
		cacheTTL  = fs.Duration("import-cache-ttl", 250*time.Millisecond, "import result cache TTL (0 disables the cache)")
		ccSize    = fs.Int("constraint-cache", 256, "compiled-constraint cache capacity (0 disables the cache)")
		follow    = fs.String("follow", "", "leader trader reference to follow as a read replica (cosm://endpoint/service)")
		promote   = fs.Bool("promote", false, "take leadership at boot, fencing the previous leader (see -epoch)")
		epoch     = fs.Uint64("epoch", 0, "fencing epoch for -promote (default: one past the recovered epoch)")
		replSync  = fs.Int("repl-sync", 0, "followers that must acknowledge each mutation before it returns (0 = asynchronous)")
		autoFail  = fs.Bool("auto-failover", false, "detect a dead leader and elect a replacement (needs -cluster and -data-dir)")
		electTO   = fs.Duration("election-timeout", 2*time.Second, "failure-suspicion and election-round timeout for -auto-failover")
		gossip    = fs.Duration("gossip-every", 0, "offer-summary gossip interval for federation links (0 disables gossip)")
		typeFiles stringList
		links     stringList
		cluster   stringList
	)
	fs.Var(&typeFiles, "type", "SIDL file with a COSM_TraderExport module to preload as a service type (repeatable)")
	fs.Var(&links, "link", "partner trader link name=cosm://endpoint/service (repeatable; bare refs get a generated name)")
	fs.Var(&cluster, "cluster", "another member of this replication cluster, cosm://endpoint/service (repeatable; quorum counts all members)")
	df := daemon.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Timeline events carry the trader's federation identity, so a
	// merged cluster timeline (`cosmcli events`) attributes each entry.
	df.NodeName = *id
	if *autoFail {
		if len(cluster) == 0 {
			return errors.New("-auto-failover needs at least one -cluster peer")
		}
		if df.DataDir == "" {
			return errors.New("-auto-failover needs -data-dir (elections journal the fencing epoch)")
		}
	}

	repo := typemgr.NewRepo()
	for _, file := range typeFiles {
		src, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		sid, err := sidl.Parse(string(src))
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		st, err := typemgr.FromSID(sid)
		if err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		// Retaining the SIDL source makes preloaded types part of journal
		// snapshots, so a recovered trader does not depend on the -type
		// flags it was originally booted with.
		if err := repo.DefineWithSource(st, string(src)); err != nil {
			return fmt.Errorf("%s: %w", file, err)
		}
		log.Printf("preloaded service type %s (%d attributes)", st.Name, len(st.Attrs))
	}

	logger := obs.NewLogger(os.Stderr, "traderd")
	topts := []trader.Option{
		trader.WithLogger(logger.With("trader")),
		trader.WithMetrics(df.Registry),
		trader.WithEvents(df.Events()),
		trader.WithImportCacheTTL(*cacheTTL),
		trader.WithConstraintCacheSize(*ccSize),
	}
	if *replSync > 0 {
		topts = append(topts, trader.WithReplSync(*replSync, replSyncTimeout))
	}
	tr := trader.New(*id, repo, topts...)

	// Recovery happens before the node listens: by the time the first
	// connection is accepted the offer store is the pre-crash one.
	j, err := df.OpenJournal()
	if err != nil {
		return err
	}
	defer j.Close()
	if j != nil {
		start := time.Now()
		if snap, ok := j.Snapshot(); ok {
			if err := tr.RestoreSnapshot(snap); err != nil {
				return fmt.Errorf("recover %s: %w", df.DataDir, err)
			}
		}
		if err := j.Replay(tr.ReplayRecord); err != nil {
			return fmt.Errorf("recover %s: %w", df.DataDir, err)
		}
		if err := j.Start(tr.JournalSnapshot); err != nil {
			return err
		}
		tr.SetJournal(j)
		// The durable vote ledger lives next to the journal: a voter
		// restarting inside an election round re-adopts its pledge
		// instead of double-voting.
		vl, err := trader.OpenVoteLog(df.DataDir)
		if err != nil {
			return err
		}
		defer vl.Close()
		tr.SetVoteLog(vl)
		// Snapshot immediately: state that exists only in boot-time
		// memory — the -type preloads above — is never journalled as
		// records, so without this a crash before the first background
		// compaction would recover the offers but lose their types.
		if err := j.Compact(); err != nil {
			return err
		}
		log.Printf("recovered %d offers, %d types from %s in %v",
			tr.OfferCount(), tr.Types().Len(), df.DataDir, time.Since(start))
	}

	// Replication role, before the first connection is accepted: a
	// follower rejects mutations from the very first request, and a
	// promoted leader journals its new epoch before anyone can pull it.
	if *follow != "" {
		tr.SetFollower(*follow)
	}
	if *promote {
		e := *epoch
		if e <= tr.Epoch() {
			e = tr.Epoch() + 1
		}
		if err := tr.Promote(e); err != nil {
			return err
		}
		log.Printf("promoted to leader at epoch %d", e)
	}

	svc, err := trader.NewService(tr)
	if err != nil {
		return err
	}
	node := cosm.NewNode(df.NodeOptions(logger.With("wire"))...)
	if j != nil {
		// Final flush+fsync after the drain, before connections close:
		// state written by requests served during the drain is durable.
		node.OnDrain(func() {
			if err := j.Sync(); err != nil {
				log.Printf("journal sync on drain: %v", err)
			}
		})
	}
	if err := node.Host(trader.ServiceName, svc); err != nil {
		return err
	}
	endpoint, err := node.ListenAndServe(*listen)
	if err != nil {
		return err
	}
	defer node.Close()

	intro, err := df.Introspection(func() error {
		if node.Draining() {
			return errors.New("draining")
		}
		return nil
	})
	if err != nil {
		return err
	}
	defer intro.Close()
	if intro != nil {
		log.Printf("metrics at http://%s/metrics", intro.Addr())
	}

	ctx := context.Background()
	if *follow != "" || *autoFail {
		// The pull loop resolves its leader lazily: under auto-failover
		// the leader changes at run time (elections, demote-rejoin), and
		// even a fixed -follow target may simply not be up yet.
		fl := trader.NewFollower(tr, nil, *id)
		fl.SetResolver(func(ctx context.Context, leaderRef string) (trader.ReplSource, error) {
			r, err := ref.Parse(leaderRef)
			if err != nil {
				return nil, err
			}
			return trader.DialTrader(ctx, node.Pool(), r)
		})
		if *follow != "" {
			fl.Retarget(*follow)
			log.Printf("following leader at %s", *follow)
		}
		if *autoFail {
			mon := trader.NewMonitor(tr, fl, trader.MonitorConfig{
				SelfID:          *id,
				SelfRef:         ref.New(endpoint, trader.ServiceName).String(),
				PeerRefs:        cluster,
				ElectionTimeout: *electTO,
				Dial: func(ctx context.Context, peerRef string) (trader.ElectionPeer, error) {
					r, err := ref.Parse(peerRef)
					if err != nil {
						return nil, err
					}
					return trader.DialTrader(ctx, node.Pool(), r)
				},
				OnPromote: func(e uint64) { log.Printf("auto-promoted to leader at epoch %d", e) },
			})
			mon.Start()
			defer mon.Close()
			log.Printf("auto-failover armed: cluster of %d, election timeout %v", len(cluster)+1, *electTO)
		}
		fl.Start()
		defer fl.Close()
	}
	// The link dialer lets the wire-level LinkAdd operation (cosmcli
	// links add) resolve peer references over this node's pool.
	tr.SetLinkDialer(func(ctx context.Context, peer ref.ServiceRef) (trader.Federate, error) {
		return trader.DialTrader(ctx, node.Pool(), peer)
	})
	for i, link := range links {
		name, rtext, ok := strings.Cut(link, "=")
		if !ok || strings.Contains(name, "://") {
			// Bare reference: keep the legacy -link form working under a
			// generated registry name.
			name, rtext = fmt.Sprintf("link-%d", i+1), link
		}
		r, err := ref.Parse(rtext)
		if err != nil {
			return fmt.Errorf("-link %s: %w", link, err)
		}
		partner, err := trader.DialTrader(ctx, node.Pool(), r)
		if err != nil {
			return fmt.Errorf("-link %s: %w", link, err)
		}
		if err := tr.AddLink(name, partner); err != nil {
			return fmt.Errorf("-link %s: %w", link, err)
		}
		log.Printf("federated with %s as %q", r, name)
	}
	if *gossip > 0 {
		g := trader.NewGossiper(tr, *gossip, 0)
		g.Start()
		defer g.Close()
		log.Printf("gossiping offer summaries every %v", *gossip)
	}

	log.Printf("trader %q serving at %s", *id, ref.New(endpoint, trader.ServiceName))
	s := <-sig
	log.Printf("received %v, draining", s)
	// The trader registers nothing at other services; its exporters own
	// their offers. Draining lets in-flight imports/exports complete.
	return df.Drain(node, nil, log.Printf)
}
