package main

import (
	"context"
	"errors"
	"fmt"
	"os/exec"
	"strings"
	"testing"
	"time"

	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/trader"
	"cosm/internal/wire"
)

// TestReplicatedFailoverKillDashNine is the HA acceptance e2e: a
// 3-node replicated trader (leader with synchronous replication plus
// two follower read replicas), the leader SIGKILLed mid-load, the
// most-advanced follower promoted — and every acknowledged export must
// survive, while the deposed leader's late writes are fenced.
func TestReplicatedFailoverKillDashNine(t *testing.T) {
	if testing.Short() {
		t.Skip("3 daemon subprocesses")
	}
	leaderDir := t.TempDir()
	leaderCmd, leaderRef := startCrashDaemon(t, leaderDir, "-repl-sync", "1")
	leaderKilled := false
	defer func() {
		if !leaderKilled {
			_ = leaderCmd.Process.Kill()
			_ = leaderCmd.Wait()
		}
	}()

	type replica struct {
		cmd *exec.Cmd
		ref ref.ServiceRef
	}
	var followers []replica
	for i := 1; i <= 2; i++ {
		cmd, r := startCrashDaemon(t, t.TempDir(),
			"-id", fmt.Sprintf("f%d", i), "-follow", leaderRef.String())
		defer func() {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}()
		followers = append(followers, replica{cmd, r})
	}

	pool := wire.NewPool()
	defer pool.Close()
	ctx := context.Background()
	tl := dialUp(t, pool, leaderRef)

	// Load: every export below returns only after a follower pulled its
	// journal record (-repl-sync 1), so all of them are *acknowledged*.
	if err := tl.DefineTypeFromSID(ctx, sidl.CarRentalSID()); err != nil {
		t.Fatal(err)
	}
	const acked = 25
	for i := 0; i < acked; i++ {
		if _, err := tl.Export(ctx, "CarRentalService",
			ref.New(fmt.Sprintf("tcp:10.2.0.%d:7000", i), "CarRentalService"),
			crashProps("FIAT_Uno", float64(40+i))); err != nil {
			t.Fatal(err)
		}
	}

	// Read replicas serve imports locally and refuse mutations with the
	// leader's address in the error.
	tf := dialUp(t, pool, followers[0].ref)
	waitForOffers(t, tf, acked)
	if _, err := tf.Export(ctx, "CarRentalService",
		ref.New("tcp:10.2.0.99:7000", "CarRentalService"), crashProps("AUDI", 1)); err == nil {
		t.Fatal("follower accepted an export")
	}

	// kill -9 the leader mid-life.
	if err := leaderCmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = leaderCmd.Wait()
	leaderKilled = true

	// Promote the most-advanced follower: followers apply strict log
	// prefixes, so the max-applied one holds every acknowledged record.
	best, bestApplied := -1, uint64(0)
	for i, f := range followers {
		fc := dialUp(t, pool, f.ref)
		st, err := fc.ReplStatus(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if st.Role != trader.RoleFollower {
			t.Fatalf("follower %d role = %q", i, st.Role)
		}
		if best < 0 || st.Applied > bestApplied {
			best, bestApplied = i, st.Applied
		}
	}
	tp := dialUp(t, pool, followers[best].ref)
	if err := tp.Promote(ctx, 1); err != nil {
		t.Fatal(err)
	}
	st, err := tp.ReplStatus(ctx)
	if err != nil || st.Role != trader.RoleLeader || st.Epoch != 1 {
		t.Fatalf("promoted status = %+v, %v", st, err)
	}

	// Zero lost acknowledged exports.
	offers, err := tp.ImportWith(ctx, "CarRentalService")
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != acked {
		t.Fatalf("promoted leader serves %d offers, want %d acknowledged", len(offers), acked)
	}

	// The market stays open on the new leader (asynchronous now — its
	// own followers would be re-pointed by the operator).
	if _, err := tp.Export(ctx, "CarRentalService",
		ref.New("tcp:10.2.1.1:7000", "CarRentalService"), crashProps("AUDI", 150)); err != nil {
		t.Fatal(err)
	}

	// Fencing: the deposed leader comes back on its old data dir still
	// believing it leads at epoch 0. One replication exchange carrying
	// epoch 1 demotes it, and its late writes are rejected.
	oldCmd, oldRef := startCrashDaemon(t, leaderDir)
	defer func() {
		_ = oldCmd.Process.Kill()
		_ = oldCmd.Wait()
	}()
	told := dialUp(t, pool, oldRef)
	if _, err := told.ReplPull(ctx, "probe", 1, 0, 1, 0); err == nil {
		t.Fatal("deposed leader accepted a pull at epoch 1")
	}
	_, err = told.Export(ctx, "CarRentalService",
		ref.New("tcp:10.2.1.2:7000", "CarRentalService"), crashProps("VW_Golf", 80))
	if err == nil {
		t.Fatal("deposed leader accepted a late export")
	}
	if !errors.Is(err, trader.ErrNotLeader) && !containsNotLeader(err) {
		t.Fatalf("late export error = %v, want not-leader rejection", err)
	}
}

// containsNotLeader matches the not-leader rejection after it has
// crossed the wire as an application error string.
func containsNotLeader(err error) bool {
	return err != nil && strings.Contains(err.Error(), "not leader")
}

// waitForOffers polls until the replica serves n offers locally.
func waitForOffers(t *testing.T, tc *trader.Client, n int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		offers, err := tc.ImportWith(context.Background(), "CarRentalService")
		if err == nil && len(offers) >= n {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never reached %d offers (last: %d, %v)", n, len(offers), err)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
