package main

import (
	"context"
	"fmt"
	"net"
	"os/exec"
	"testing"
	"time"

	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/trader"
	"cosm/internal/wire"
)

// freeRefs reserves n distinct listen ports and returns the matching
// endpoint / trader-ref pairs. The listeners are closed just before
// returning, so a daemon started promptly can claim its port; -cluster
// needs every member's address before any member is up, which rules out
// the usual dynamic :0 allocation.
func freeRefs(t *testing.T, n int) ([]string, []ref.ServiceRef) {
	t.Helper()
	listeners := make([]net.Listener, n)
	endpoints := make([]string, n)
	refs := make([]ref.ServiceRef, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = l
		endpoints[i] = fmt.Sprintf("tcp:127.0.0.1:%d", l.Addr().(*net.TCPAddr).Port)
		refs[i] = ref.New(endpoints[i], trader.ServiceName)
	}
	for _, l := range listeners {
		_ = l.Close()
	}
	return endpoints, refs
}

// waitForStatus polls a node until its replication status satisfies ok.
func waitForStatus(t *testing.T, tc *trader.Client, deadline time.Duration, ok func(trader.ReplStatus) bool) trader.ReplStatus {
	t.Helper()
	end := time.Now().Add(deadline)
	var st trader.ReplStatus
	var err error
	for time.Now().Before(end) {
		st, err = tc.ReplStatus(context.Background())
		if err == nil && ok(st) {
			return st
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("node never reached the wanted status (last: %+v, %v)", st, err)
	return trader.ReplStatus{}
}

// TestAutoFailoverElectsAndRejoins is the self-healing HA e2e: a
// 3-node cluster with -auto-failover, the leader SIGKILLed mid-load.
// The cluster must elect a replacement on its own with zero lost
// acknowledged exports; the restarted old leader must discover it was
// deposed and rejoin as a follower; and a client still bound to the
// deposed node must reach the new leader through the hint redirect.
func TestAutoFailoverElectsAndRejoins(t *testing.T) {
	if testing.Short() {
		t.Skip("3 daemon subprocesses")
	}
	endpoints, refs := freeRefs(t, 3)
	clusterArgs := func(self int) []string {
		var args []string
		for i := range refs {
			if i != self {
				args = append(args, "-cluster", refs[i].String())
			}
		}
		return args
	}
	start := func(i int, dir string, extra ...string) *exec.Cmd {
		args := append([]string{
			"-listen", endpoints[i],
			"-id", fmt.Sprintf("n%d", i),
			"-auto-failover",
			"-election-timeout", "500ms",
		}, clusterArgs(i)...)
		args = append(args, extra...)
		cmd, _ := startCrashDaemon(t, dir, args...)
		return cmd
	}

	leaderDir := t.TempDir()
	leaderCmd := start(0, leaderDir, "-repl-sync", "1")
	leaderKilled := false
	defer func() {
		if !leaderKilled {
			_ = leaderCmd.Process.Kill()
			_ = leaderCmd.Wait()
		}
	}()
	for i := 1; i <= 2; i++ {
		cmd := start(i, t.TempDir(), "-follow", refs[0].String())
		defer func() {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
		}()
	}

	pool := wire.NewPool()
	defer pool.Close()
	ctx := context.Background()
	tl := dialUp(t, pool, refs[0])

	// Acknowledged load: -repl-sync 1 returns each export only after a
	// follower pulled its record.
	if err := tl.DefineTypeFromSID(ctx, sidl.CarRentalSID()); err != nil {
		t.Fatal(err)
	}
	const acked = 20
	for i := 0; i < acked; i++ {
		if _, err := tl.Export(ctx, "CarRentalService",
			ref.New(fmt.Sprintf("tcp:10.3.0.%d:7000", i), "CarRentalService"),
			crashProps("FIAT_Uno", float64(40+i))); err != nil {
			t.Fatal(err)
		}
	}

	// kill -9 the leader. Nobody promotes by hand below this line.
	if err := leaderCmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = leaderCmd.Wait()
	leaderKilled = true

	// The survivors must detect the death and elect among themselves.
	winner := -1
	var winnerStatus trader.ReplStatus
	end := time.Now().Add(30 * time.Second)
	for winner < 0 && time.Now().Before(end) {
		for i := 1; i <= 2; i++ {
			tc := dialUp(t, pool, refs[i])
			if st, err := tc.ReplStatus(ctx); err == nil && st.Role == trader.RoleLeader {
				winner, winnerStatus = i, st
				break
			}
		}
		time.Sleep(100 * time.Millisecond)
	}
	if winner < 0 {
		t.Fatal("no follower auto-promoted after the leader died")
	}
	if winnerStatus.Epoch == 0 {
		t.Fatalf("winner's epoch = 0, promotion did not fence: %+v", winnerStatus)
	}

	// Zero lost acknowledged exports on the elected leader.
	tw := dialUp(t, pool, refs[winner])
	offers, err := tw.ImportWith(ctx, "CarRentalService")
	if err != nil {
		t.Fatal(err)
	}
	if len(offers) != acked {
		t.Fatalf("elected leader serves %d offers, want %d acknowledged", len(offers), acked)
	}

	// The restarted old leader must discover the higher epoch and
	// demote-rejoin as a follower of the winner, catching up fully.
	oldCmd := start(0, leaderDir)
	defer func() {
		_ = oldCmd.Process.Kill()
		_ = oldCmd.Wait()
	}()
	told := dialUp(t, pool, refs[0])
	waitForStatus(t, told, 30*time.Second, func(st trader.ReplStatus) bool {
		return st.Role == trader.RoleFollower && st.Epoch >= winnerStatus.Epoch
	})
	waitForOffers(t, told, acked)

	// A client still bound to the deposed node follows the leader hint.
	told.FollowLeaderHints(true)
	if _, err := told.Export(ctx, "CarRentalService",
		ref.New("tcp:10.3.1.1:7000", "CarRentalService"), crashProps("AUDI", 150)); err != nil {
		t.Fatalf("redirected export failed: %v", err)
	}
	// waitForOffers, not a one-shot import: the leader's import cache
	// (250ms TTL) may still hold the pre-export result.
	waitForOffers(t, tw, acked+1)
}
