package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/wire"
)

// TestMain doubles as the crash-test daemon: when the parent test
// re-executes this binary with TRADERD_CRASH_DATADIR set, it runs a
// journaled traderd instead of the test suite and blocks until killed.
// TRADERD_CRASH_ARGS appends extra (space-separated) daemon flags —
// the replicated-failover e2e uses it for -follow/-id/-repl-sync, and
// a later -id overrides the default.
func TestMain(m *testing.M) {
	if dir := os.Getenv("TRADERD_CRASH_DATADIR"); dir != "" {
		log.SetPrefix("traderd: ")
		args := []string{
			"-listen", "tcp:127.0.0.1:0",
			"-id", "crash-test",
			"-data-dir", dir,
			"-fsync", "always",
		}
		args = append(args, strings.Fields(os.Getenv("TRADERD_CRASH_ARGS"))...)
		sig := make(chan os.Signal) // no graceful path: the parent kills -9
		if err := run(args, sig); err != nil {
			log.Fatal(err)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// startCrashDaemon launches the journaled daemon subprocess and returns
// once it has announced its serving endpoint on stderr. extra flags are
// appended after the defaults (a later -id wins).
func startCrashDaemon(t *testing.T, dataDir string, extra ...string) (*exec.Cmd, ref.ServiceRef) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=TestMain")
	cmd.Env = append(os.Environ(),
		"TRADERD_CRASH_DATADIR="+dataDir,
		"TRADERD_CRASH_ARGS="+strings.Join(extra, " "))
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	serving := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "serving at "); i >= 0 {
				select {
				case serving <- strings.TrimSpace(line[i+len("serving at "):]):
				default:
				}
			}
		}
	}()
	select {
	case s := <-serving:
		r, err := ref.Parse(s)
		if err != nil {
			_ = cmd.Process.Kill()
			t.Fatalf("bad serving ref %q: %v", s, err)
		}
		return cmd, r
	case <-time.After(15 * time.Second):
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
		t.Fatal("daemon never announced its endpoint")
		return nil, ref.ServiceRef{}
	}
}

func crashProps(model string, charge float64) []sidl.Property {
	return []sidl.Property{
		{Name: "CarModel", Value: sidl.EnumLit(model)},
		{Name: "AverageMilage", Value: sidl.IntLit(38000)},
		{Name: "ChargePerDay", Value: sidl.FloatLit(charge)},
		{Name: "ChargeCurrency", Value: sidl.EnumLit("USD")},
	}
}

// TestCrashRecoveryKillDashNine is the acceptance e2e: load a journaled
// traderd over the wire, SIGKILL it mid-life, restart it on the same
// data directory, and require an identical import to return
// byte-identical offers.
func TestCrashRecoveryKillDashNine(t *testing.T) {
	dataDir := t.TempDir()
	cmd1, r1 := startCrashDaemon(t, dataDir)
	killed := false
	defer func() {
		if !killed {
			_ = cmd1.Process.Kill()
			_ = cmd1.Wait()
		}
	}()

	pool := wire.NewPool()
	defer pool.Close()
	ctx := context.Background()
	tc := dialUp(t, pool, r1)

	if err := tc.DefineTypeFromSID(ctx, sidl.CarRentalSID()); err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 10; i++ {
		id, err := tc.Export(ctx, "CarRentalService",
			ref.New(fmt.Sprintf("tcp:10.1.0.%d:7000", i), "CarRentalService"),
			crashProps("FIAT_Uno", float64(40+i)))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if err := tc.Withdraw(ctx, ids[0]); err != nil {
		t.Fatal(err)
	}
	if err := tc.Replace(ctx, ids[1], crashProps("VW_Golf", 199)); err != nil {
		t.Fatal(err)
	}
	before, err := tc.ImportWith(ctx, "CarRentalService")
	if err != nil {
		t.Fatal(err)
	}
	beforeJSON, err := json.Marshal(before)
	if err != nil {
		t.Fatal(err)
	}

	// kill -9: no drain, no sync, no goodbye.
	if err := cmd1.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = cmd1.Wait()
	killed = true

	cmd2, r2 := startCrashDaemon(t, dataDir)
	defer func() {
		_ = cmd2.Process.Kill()
		_ = cmd2.Wait()
	}()
	tc2 := dialUp(t, pool, r2)

	after, err := tc2.ImportWith(ctx, "CarRentalService")
	if err != nil {
		t.Fatal(err)
	}
	afterJSON, err := json.Marshal(after)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(afterJSON, beforeJSON) {
		t.Fatalf("import differs after crash recovery:\n got %s\nwant %s", afterJSON, beforeJSON)
	}

	// The market stays open: a fresh export on the recovered trader must
	// get a never-before-seen ID.
	newID, err := tc2.Export(ctx, "CarRentalService",
		ref.New("tcp:10.1.0.99:7000", "CarRentalService"), crashProps("AUDI", 150))
	if err != nil {
		t.Fatal(err)
	}
	for _, old := range ids {
		if newID == old {
			t.Fatalf("post-recovery export reused ID %q", newID)
		}
	}
}
