// Command namesrvd runs the name server and group manager of the COSM
// service-support level (Fig. 6) as one daemon.
//
// Usage:
//
//	namesrvd -listen tcp:127.0.0.1:7000
//
// The shared daemon flags (see internal/daemon) apply: -metrics-addr
// serves /metrics, /debug/vars, /debug/traces (flight-recorder spans)
// and /debug/events; -pprof adds net/http/pprof alongside them.
package main

import (
	"errors"
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"

	"cosm/internal/cosm"
	"cosm/internal/daemon"
	"cosm/internal/naming"
	"cosm/internal/obs"
	"cosm/internal/ref"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("namesrvd: ")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], sig); err != nil {
		log.Fatal(err)
	}
}

// run starts the daemon and blocks until sig delivers or closes.
func run(args []string, sig <-chan os.Signal) error {
	fs := flag.NewFlagSet("namesrvd", flag.ContinueOnError)
	listen := fs.String("listen", "tcp:127.0.0.1:7000", "endpoint to serve on (tcp:host:port or loop:name)")
	df := daemon.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	nameSvc, err := naming.NewService(naming.NewRegistry())
	if err != nil {
		return err
	}
	groupSvc, err := naming.NewGroupService(naming.NewGroups())
	if err != nil {
		return err
	}
	logger := obs.NewLogger(os.Stderr, "namesrvd")
	node := cosm.NewNode(df.NodeOptions(logger.With("wire"))...)
	if err := node.Host(naming.ServiceName, nameSvc); err != nil {
		return err
	}
	if err := node.Host(naming.GroupServiceName, groupSvc); err != nil {
		return err
	}
	endpoint, err := node.ListenAndServe(*listen)
	if err != nil {
		return err
	}
	defer node.Close()

	intro, err := df.Introspection(func() error {
		if node.Draining() {
			return errors.New("draining")
		}
		return nil
	})
	if err != nil {
		return err
	}
	defer intro.Close()
	if intro != nil {
		log.Printf("metrics at http://%s/metrics", intro.Addr())
	}

	log.Printf("name server at %s", ref.New(endpoint, naming.ServiceName))
	log.Printf("group manager at %s", ref.New(endpoint, naming.GroupServiceName))
	s := <-sig
	log.Printf("received %v, draining", s)
	return df.Drain(node, nil, log.Printf)
}
