package main

import (
	"context"
	"io"
	"log"
	"os"
	"testing"
	"time"

	"cosm/internal/naming"
	"cosm/internal/ref"
	"cosm/internal/wire"
)

func TestDaemonServesAndShutsDown(t *testing.T) {
	log.SetOutput(io.Discard)
	defer log.SetOutput(os.Stderr)

	sig := make(chan os.Signal)
	done := make(chan error, 1)
	go func() { done <- run([]string{"-listen", "loop:namesrvd-test"}, sig) }()

	// Wait for the daemon to come up, then exercise both services.
	pool := wire.NewPool()
	defer pool.Close()
	ctx := context.Background()
	var nc *naming.NameClient
	deadline := time.Now().Add(5 * time.Second)
	for {
		var err error
		nc, err = naming.DialNameServer(ctx, pool, ref.New("loop:namesrvd-test", naming.ServiceName))
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never came up: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	target := ref.New("tcp:far:1", "Svc")
	if err := nc.Register(ctx, "a", target); err != nil {
		t.Fatal(err)
	}
	got, err := nc.Resolve(ctx, "a")
	if err != nil || got != target {
		t.Fatalf("Resolve = %v, %v", got, err)
	}
	gc, err := naming.DialGroups(ctx, pool, ref.New("loop:namesrvd-test", naming.GroupServiceName))
	if err != nil {
		t.Fatal(err)
	}
	if err := gc.Join(ctx, "g", "tcp:x:1"); err != nil {
		t.Fatal(err)
	}

	close(sig)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestBadListenEndpoint(t *testing.T) {
	log.SetOutput(io.Discard)
	defer log.SetOutput(os.Stderr)
	if err := run([]string{"-listen", "bogus"}, nil); err == nil {
		t.Fatal("bad endpoint must fail")
	}
	if err := run([]string{"-nosuchflag"}, nil); err == nil {
		t.Fatal("bad flag must fail")
	}
}
