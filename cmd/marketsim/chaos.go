package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"time"

	"cosm/internal/browser"
	"cosm/internal/carrental"
	"cosm/internal/cosm"
	"cosm/internal/genclient"
	"cosm/internal/naming"
	"cosm/internal/obs"
	"cosm/internal/sidl"
	"cosm/internal/trader"
	"cosm/internal/typemgr"
	"cosm/internal/wire"
)

// chaosConfig parameterises the live chaos-market demo.
type chaosConfig struct {
	seed     int64
	bookings int
	reset    float64
	drop     float64
	corrupt  float64
	latency  time.Duration
}

func registerChaosFlags(fs *flag.FlagSet) *chaosConfig {
	cc := &chaosConfig{}
	fs.IntVar(&cc.bookings, "chaos-bookings", 8, "bookings per chaos phase")
	fs.Float64Var(&cc.reset, "chaos-reset", 0.02, "probability of an injected connection reset per read/write")
	fs.Float64Var(&cc.drop, "chaos-drop", 0.02, "probability of a silently dropped write")
	fs.Float64Var(&cc.corrupt, "chaos-corrupt", 0.01, "probability of a corrupted byte per read/write")
	fs.DurationVar(&cc.latency, "chaos-latency", 0, "injected latency per transport operation")
	return cc
}

// runChaos stands up a live market over TCP — an infrastructure node
// (trader, browser, name server) and three car rental providers — then
// books cars through a fault-injected client transport, crashes the
// cheapest provider mid-run, and shows the resilience machinery
// degrade gracefully: per-call retries, import->bind failover past the
// dead offer, and the trader's liveness sweeper suspecting and then
// withdrawing it. All randomness is seeded, so the injected fault
// schedule is reproducible (timing-dependent counts may still vary).
func runChaos(w io.Writer, cc chaosConfig) error {
	ctx := context.Background()

	// --- infrastructure node: trader + browser + name server -------
	infra := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	defer infra.Close()
	nameSvc, err := naming.NewService(naming.NewRegistry())
	if err != nil {
		return err
	}
	browserSvc, err := browser.NewService(browser.NewDirectory())
	if err != nil {
		return err
	}
	repo := typemgr.NewRepo()
	carType, err := typemgr.FromSID(sidl.CarRentalSID())
	if err != nil {
		return err
	}
	if err := repo.Define(carType); err != nil {
		return err
	}
	tr := trader.New("chaos-market", repo)
	traderSvc, err := trader.NewService(tr)
	if err != nil {
		return err
	}
	for name, svc := range map[string]*cosm.Service{
		naming.ServiceName:  nameSvc,
		browser.ServiceName: browserSvc,
		trader.ServiceName:  traderSvc,
	} {
		if err := infra.Host(name, svc); err != nil {
			return err
		}
	}
	infraEP, err := infra.ListenAndServe("tcp:127.0.0.1:0")
	if err != nil {
		return err
	}

	// --- three providers, distinct prices ---------------------------
	type provider struct {
		name   string
		tariff float64
		node   *cosm.Node
		pub    *carrental.Publication
	}
	providers := []*provider{
		{name: "AlsterCars", tariff: 85},
		{name: "ElbeRental", tariff: 78}, // cheapest: the crash victim
		{name: "IsarCars", tariff: 95},
	}
	brw, err := browser.DialBrowser(ctx, infra.Pool(), infra.MustRefFor(browser.ServiceName))
	if err != nil {
		return err
	}
	trd, err := trader.DialTrader(ctx, infra.Pool(), infra.MustRefFor(trader.ServiceName))
	if err != nil {
		return err
	}
	for _, p := range providers {
		p.node = cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
		defer p.node.Close()
		svc, impl, err := carrental.New(carrental.WithTariff(carrental.Tariff{"FIAT_Uno": p.tariff}))
		if err != nil {
			return err
		}
		if err := p.node.Host(p.name, svc); err != nil {
			return err
		}
		if _, err := p.node.ListenAndServe("tcp:127.0.0.1:0"); err != nil {
			return err
		}
		sid := impl.SID().Clone()
		sid.ServiceName = p.name
		for i, prop := range sid.Trader.Properties {
			if prop.Name == "ChargePerDay" {
				sid.Trader.Properties[i].Value = sidl.FloatLit(p.tariff)
			}
		}
		if p.pub, err = carrental.Publish(ctx, sid, p.node.MustRefFor(p.name), brw, trd); err != nil {
			return err
		}
	}

	fmt.Fprintf(w, "COSM chaos market: seed %d, faults reset=%.0f%% drop=%.0f%% corrupt=%.0f%% latency=%s\n",
		cc.seed, 100*cc.reset, 100*cc.drop, 100*cc.corrupt, cc.latency)
	fmt.Fprintf(w, "infrastructure at %s; providers:", infraEP)
	for _, p := range providers {
		fmt.Fprintf(w, " %s(%.0f)", p.name, p.tariff)
	}
	fmt.Fprintln(w)

	// --- client side: everything flows through the fault injector ---
	faults := wire.NewFaultNet(wire.FaultConfig{
		Seed:          cc.seed,
		ResetProb:     cc.reset,
		DropProb:      cc.drop,
		CorruptProb:   cc.corrupt,
		Latency:       cc.latency,
		LatencyJitter: cc.latency / 2,
	}, wire.DialConnContext)
	// The chaos pool carries client metrics; per-phase table rows are
	// interval views diffed from snapshots at the phase boundaries.
	cm := wire.NewClientMetrics(obs.NewRegistry())
	pool := wire.NewPool(wire.WithDialer(faults.Dial), wire.WithPoolMetrics(cm))
	defer pool.Close()
	gc := genclient.New(pool)
	chaosTrd, err := trader.DialTrader(ctx, pool, infra.MustRefFor(trader.ServiceName))
	if err != nil {
		return err
	}

	// book runs one full booking protocol: import (policy-ordered),
	// bind the first live provider, SelectCar, Commit. A fault can kill
	// a booking mid-protocol; the protocol is stateful, so recovery is
	// a fresh import->bind->book from the top — never a blind re-send
	// of the failed call.
	bookOnce := func(actx context.Context, days int) (string, error) {
		conn, offer, err := trader.Select(actx, chaosTrd, pool, "CarRentalService",
			trader.Where("CarModel == FIAT_Uno"),
			trader.OrderBy("min:ChargePerDay"))
		if err != nil {
			return "", err
		}
		b := gc.Adopt(conn)
		if _, err := b.InvokeForm(actx, "SelectCar", map[string]string{
			"SelectCar.selection.model": "FIAT_Uno",
			"SelectCar.selection.days":  fmt.Sprint(days),
		}); err != nil {
			return "", err
		}
		if _, err := b.Invoke(actx, "Commit"); err != nil {
			return "", err
		}
		return offer.Ref.Service, nil
	}
	book := func(days int) (string, error) {
		// One root trace per logical booking: retries and the failover
		// to the next-best offer all land under the same trace ID in
		// the provider/trader logs.
		bctx, _ := obs.EnsureTrace(ctx)
		var lastErr error
		for attempt := 0; attempt < 4; attempt++ {
			// Each attempt gets a deadline: a dropped frame never gets a
			// response, and the deadline turns that silence into a
			// retryable failure.
			actx, cancel := context.WithTimeout(bctx, 3*time.Second)
			who, err := bookOnce(actx, days)
			cancel()
			if err == nil {
				return who, nil
			}
			lastErr = err
		}
		return "", lastErr
	}

	var phases []phaseRow
	runPhase := func(label string) {
		before := cm.Snapshot()
		served := map[string]int{}
		failed := 0
		for i := 0; i < cc.bookings; i++ {
			who, err := book(i%5 + 1)
			if err != nil {
				failed++
				continue
			}
			served[who]++
		}
		phases = append(phases, phaseDelta(label, before, cm.Snapshot()))
		fmt.Fprintf(w, "%s: %d/%d bookings completed;", label, cc.bookings-failed, cc.bookings)
		for _, p := range providers {
			if n := served[p.name]; n > 0 {
				fmt.Fprintf(w, " %s=%d", p.name, n)
			}
		}
		fmt.Fprintln(w)
	}

	// Phase 1: all providers alive; cheapest provider wins every time.
	runPhase("phase 1 (all live)")

	// Phase 2: crash the cheapest provider without withdrawing its
	// offer — exactly the stale-offer hazard of a long-lived market.
	var victim *provider
	for _, p := range providers {
		if victim == nil || p.tariff < victim.tariff {
			victim = p
		}
	}
	_ = victim.node.Close()
	fmt.Fprintf(w, "crashed %s (cheapest) without withdrawing its offer\n", victim.name)
	runPhase("phase 2 (failover)")

	// The trader's sweeper notices independently: the first sweep marks
	// the dead provider's offer suspect, the second withdraws it. A
	// deployment runs the same sweeps from a background timer (Start);
	// here they are driven synchronously so the report lines interleave
	// deterministically with the rest of the output.
	sweeper := trader.NewSweeper(tr, infra.Pool(), trader.WithFailThreshold(2))
	defer sweeper.Close()
	for i := 1; i <= 2; i++ {
		rep := sweeper.SweepOnce(ctx)
		fmt.Fprintf(w, "sweep %d: checked=%d healthy=%d suspected=%d withdrawn=%d\n",
			i, rep.Checked, rep.Healthy, rep.Suspected, rep.Withdrawn)
	}

	offers, err := trd.ImportWith(ctx, "CarRentalService")
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "post-sweep import: %d offer(s) remain (dead offer withdrawn)\n", len(offers))

	// Phase 3: retire a live provider *gracefully* — deregister first
	// (withdraw offer + browser entry), then drain. Unlike the crash
	// above, no sweeps are needed: importers simply stop seeing the
	// offer and bind to the remaining provider.
	var retiree *provider
	for _, p := range providers {
		if p != victim && (retiree == nil || p.tariff < retiree.tariff) {
			retiree = p
		}
	}
	drainCtx, cancelDrain := context.WithTimeout(ctx, 5*time.Second)
	if err := retiree.pub.Unpublish(drainCtx); err != nil {
		cancelDrain()
		return err
	}
	if err := retiree.node.Shutdown(drainCtx); err != nil {
		cancelDrain()
		return err
	}
	cancelDrain()
	fmt.Fprintf(w, "gracefully drained %s (offer withdrawn before shutdown)\n", retiree.name)
	runPhase("phase 3 (after drain)")

	fs := faults.Stats()
	ps := pool.Stats()
	fmt.Fprintf(w, "transport: dials=%d injected resets=%d drops=%d corruptions=%d\n",
		fs.Dials, fs.Resets, fs.Drops, fs.Corruptions)
	fmt.Fprintf(w, "pool: retries=%d fail-fast=%d breaker-opens=%d breaker[%s]=%s\n",
		ps.Retries, ps.FailFast, ps.BreakerOpens, victim.name, pool.BreakerState(victim.node.Endpoint()))

	fmt.Fprintln(w, "per-phase client metrics:")
	fmt.Fprintf(w, "  %-24s %6s %7s %6s %8s %9s\n", "phase", "calls", "errors", "sheds", "retries", "p99")
	for _, r := range phases {
		fmt.Fprintf(w, "  %-24s %6d %7d %6d %8d %9s\n",
			r.label, r.calls, r.errors, r.sheds, r.retries, r.p99.Round(100*time.Microsecond))
	}
	return nil
}

// phaseRow is one line of the per-phase summary table, derived from the
// client metric registry rather than ad-hoc counters in the demo loop.
type phaseRow struct {
	label                         string
	calls, errors, sheds, retries uint64
	p99                           time.Duration
}

// phaseDelta scopes the client metrics to one phase by diffing the
// snapshots taken at its boundaries. Per-endpoint latency intervals are
// merged into a single histogram before taking the p99.
func phaseDelta(label string, before, after wire.ClientSnapshot) phaseRow {
	r := phaseRow{
		label:   label,
		sheds:   after.Sheds - before.Sheds,
		retries: after.Retries - before.Retries,
	}
	for status, n := range after.Calls {
		d := n - before.Calls[status]
		r.calls += d
		if status != "ok" {
			r.errors += d
		}
	}
	var lat obs.HistSnapshot
	for ep, s := range after.Latency {
		lat = lat.Merge(s.Sub(before.Latency[ep]))
	}
	r.p99 = time.Duration(lat.Quantile(0.99) * float64(time.Second))
	return r
}
