package main

// The chaos soak harness (-soak): a replicated trader cluster — each
// node a real journaled trader serving over local TCP — driven through
// a seeded schedule of the failures a long-lived deployment actually
// meets: leader crashes, full and asymmetric partitions, disk faults
// latching a journal fail-stop, follower churn. A continuous invariant
// checker watches the cluster the whole time:
//
//   - no two nodes ever claim leadership of the same epoch at the
//     same time, and no epoch is won by two different elections,
//   - a node's epoch never moves backwards within one incarnation,
//   - no acknowledged export is ever lost (writes are synchronously
//     replicated, so an ack means a quorum-electable copy exists),
//   - after the schedule ends and the cluster heals, every node
//     converges to byte-identical import results.
//
// The process exits non-zero on any violation; "invariants: clean" on
// the last line is the marker CI greps for.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"cosm/internal/cosm"
	"cosm/internal/journal"
	"cosm/internal/obs"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/trader"
	"cosm/internal/typemgr"
	"cosm/internal/wire"
)

// soakConfig parameterises the chaos soak run.
type soakConfig struct {
	seed   int64
	nodes  int
	rounds int
}

func registerSoakFlags(fs *flag.FlagSet) *soakConfig {
	sc := &soakConfig{}
	fs.IntVar(&sc.nodes, "soak-nodes", 3, "replicated cluster size (3-5)")
	fs.IntVar(&sc.rounds, "soak-rounds", 8, "fault-injection rounds before the final convergence check")
	return sc
}

const (
	soakElectionTimeout = 300 * time.Millisecond
	soakReplSyncWait    = 1500 * time.Millisecond
	soakServiceType     = "CarRentalService"
)

// soakNode is one cluster member. The identity — index, data dir,
// listen endpoint, fault injectors — survives kill/restart; the
// trader, journal, node and loops are per-incarnation.
type soakNode struct {
	idx       int
	id        string
	dir       string
	endpoint  string
	ref       ref.ServiceRef
	peers     []string // refs of the other members
	faults    *wire.FaultNet
	events    *obs.EventLog      // per-node timeline, survives incarnations
	onPromote func(epoch uint64) // election-win observer (the checker)

	mu          sync.Mutex
	alive       bool
	incarnation int
	wasFollower bool   // role at last kill: restart restores it
	lastHint    string // leader hint at last kill
	tr          *trader.Trader
	j           *journal.Journal
	vl          *trader.VoteLog
	inj         *journal.FaultInjector
	node        *cosm.Node
	pool        *wire.Pool
	fl          *trader.Follower
	mon         *trader.Monitor
}

// start boots one incarnation: recover from the data dir, serve on the
// fixed endpoint, arm the pull loop and the failover monitor.
func (n *soakNode) start() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.alive {
		return nil
	}
	n.incarnation++
	n.inj = journal.NewFaultInjector()
	j, err := journal.Open(n.dir, journal.Options{
		Fsync:     journal.FsyncAlways,
		FaultHook: n.inj.Hook(),
	})
	if err != nil {
		return err
	}
	tr := trader.New(n.id, typemgr.NewRepo(),
		trader.WithImportCacheTTL(0), // convergence checks need fresh reads
		trader.WithReplSync(1, soakReplSyncWait),
		trader.WithEvents(n.events),
	)
	if snap, ok := j.Snapshot(); ok {
		if err := tr.RestoreSnapshot(snap); err != nil {
			return err
		}
	}
	if err := j.Replay(tr.ReplayRecord); err != nil {
		return err
	}
	if err := j.Start(tr.JournalSnapshot); err != nil {
		return err
	}
	tr.SetJournal(j)
	// The durable vote ledger closes the restart double-vote window:
	// kills land mid-election here by design.
	vl, err := trader.OpenVoteLog(n.dir)
	if err != nil {
		return err
	}
	tr.SetVoteLog(vl)
	n.vl = vl
	if n.wasFollower {
		// Restore the pre-crash role, as a real deployment's -follow
		// config would: the journal holds replicated epoch records, so
		// without this a restarted replica would boot claiming to lead
		// an epoch that belongs to someone else.
		tr.SetFollower(n.lastHint)
	}

	svc, err := trader.NewService(tr)
	if err != nil {
		return err
	}
	node := cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
	if err := node.Host(trader.ServiceName, svc); err != nil {
		return err
	}
	if _, err := node.ListenAndServe(n.endpoint); err != nil {
		return err
	}
	// All outbound traffic — pulls, votes, status scans — crosses this
	// node's FaultNet, so partitions cut exactly what a real network
	// partition would.
	pool := wire.NewPool(wire.WithDialer(n.faults.Dial))
	fl := trader.NewFollower(tr, nil, n.id)
	fl.SetResolver(func(ctx context.Context, leaderRef string) (trader.ReplSource, error) {
		r, err := ref.Parse(leaderRef)
		if err != nil {
			return nil, err
		}
		return trader.DialTrader(ctx, pool, r)
	})
	if hint := tr.LeaderHint(); hint != "" {
		fl.Retarget(hint)
	}
	mon := trader.NewMonitor(tr, fl, trader.MonitorConfig{
		SelfID:          n.id,
		SelfRef:         n.ref.String(),
		PeerRefs:        n.peers,
		ElectionTimeout: soakElectionTimeout,
		Dial: func(ctx context.Context, peerRef string) (trader.ElectionPeer, error) {
			r, err := ref.Parse(peerRef)
			if err != nil {
				return nil, err
			}
			return trader.DialTrader(ctx, pool, r)
		},
		OnPromote: n.onPromote,
	})
	mon.Start()
	fl.Start()

	n.alive = true
	n.tr, n.j, n.node, n.pool, n.fl, n.mon = tr, j, node, pool, fl, mon
	return nil
}

// kill tears the incarnation down abruptly: loops stopped, sockets
// dropped, no drain. FsyncAlways means everything acknowledged is
// already on disk, so this is as close to kill -9 as one process gets.
func (n *soakNode) kill() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.alive {
		return
	}
	n.alive = false
	n.wasFollower = n.tr.Role() == trader.RoleFollower
	n.lastHint = n.tr.LeaderHint()
	n.mon.Close()
	n.fl.Close()
	n.node.Close()
	n.pool.Close()
	_ = n.j.Close()
	_ = n.vl.Close()
	n.tr, n.j, n.vl, n.node, n.pool, n.fl, n.mon = nil, nil, nil, nil, nil, nil, nil
}

// snapshot returns the live handles of the current incarnation (nil
// trader when down) without racing a restart.
func (n *soakNode) snapshot() (tr *trader.Trader, j *journal.Journal, incarnation int, alive bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.tr, n.j, n.incarnation, n.alive
}

// soakViolations collects invariant violations from every goroutine.
type soakViolations struct {
	mu   sync.Mutex
	list []string
}

func (v *soakViolations) addf(format string, args ...any) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.list = append(v.list, fmt.Sprintf(format, args...))
}

func (v *soakViolations) all() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	return append([]string(nil), v.list...)
}

// soakChecker continuously verifies the run-time invariants:
// per-incarnation epoch monotonicity; no two nodes simultaneously
// claiming leadership of the same epoch (a node restarting on its
// journal may transiently re-claim an OLD epoch until the monitor
// deposes it — that is crash recovery, not split brain, so only
// same-instant claims count); and, through the OnPromote hook, no
// epoch ever won by two different elections.
type soakChecker struct {
	nodes []*soakNode
	viol  *soakViolations

	electMu sync.Mutex
	elected map[uint64]string // epoch -> node id that won it

	lastSeen map[string]uint64 // "idx/incarnation" -> last epoch
	stop     chan struct{}
	done     chan struct{}
}

func newSoakChecker(nodes []*soakNode, viol *soakViolations) *soakChecker {
	return &soakChecker{
		nodes:    nodes,
		viol:     viol,
		elected:  map[uint64]string{},
		lastSeen: map[string]uint64{},
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// onElect observes one election win (wired into every incarnation's
// MonitorConfig.OnPromote): quorum fencing must make wins unique per
// epoch across the whole run, restarts included.
func (c *soakChecker) onElect(id string, epoch uint64) {
	c.electMu.Lock()
	defer c.electMu.Unlock()
	if who, ok := c.elected[epoch]; ok && who != id {
		c.viol.addf("double election: both %s and %s won epoch %d", who, id, epoch)
		return
	}
	c.elected[epoch] = id
}

func (c *soakChecker) run() {
	defer close(c.done)
	t := time.NewTicker(20 * time.Millisecond)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.poll()
		}
	}
}

func (c *soakChecker) poll() {
	claims := map[uint64]string{} // epoch -> claimant, this instant
	for _, n := range c.nodes {
		tr, _, inc, alive := n.snapshot()
		if !alive || tr == nil {
			continue
		}
		st := tr.Status()
		key := fmt.Sprintf("%d/%d", n.idx, inc)
		if last, ok := c.lastSeen[key]; ok && st.Epoch < last {
			c.viol.addf("node %s epoch moved backwards: %d -> %d (incarnation %d)",
				n.id, last, st.Epoch, inc)
		}
		c.lastSeen[key] = st.Epoch
		if st.Role == trader.RoleLeader {
			if who, ok := claims[st.Epoch]; ok && who != n.id {
				c.viol.addf("split brain: %s and %s both lead at epoch %d simultaneously",
					who, n.id, st.Epoch)
			}
			claims[st.Epoch] = n.id
		}
	}
}

func (c *soakChecker) close() {
	close(c.stop)
	<-c.done
}

// ackedExport is one export the cluster acknowledged: it must exist on
// the final leader no matter what the schedule did in between.
type ackedExport struct {
	id     string
	serial int
}

// soakWorkload continuously exports offers through the wire like an
// external client: find the current leader, export with a deadline,
// record the ack. Only acknowledged exports join the ledger.
type soakWorkload struct {
	nodes []*soakNode
	pool  *wire.Pool

	mu     sync.Mutex
	acked  []ackedExport
	serial int
	errs   int

	stop chan struct{}
	done chan struct{}
}

func newSoakWorkload(nodes []*soakNode) *soakWorkload {
	return &soakWorkload{
		nodes: nodes,
		pool:  wire.NewPool(),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
}

// leaderRef finds the highest-epoch node currently claiming
// leadership, the same way an operator's health dashboard would.
func (w *soakWorkload) leaderRef() (ref.ServiceRef, bool) {
	var best ref.ServiceRef
	bestEpoch, found := uint64(0), false
	for _, n := range w.nodes {
		tr, _, _, alive := n.snapshot()
		if !alive || tr == nil {
			continue
		}
		if st := tr.Status(); st.Role == trader.RoleLeader && (!found || st.Epoch > bestEpoch) {
			best, bestEpoch, found = n.ref, st.Epoch, true
		}
	}
	return best, found
}

func (w *soakWorkload) run() {
	defer close(w.done)
	for {
		select {
		case <-w.stop:
			return
		case <-time.After(25 * time.Millisecond):
		}
		r, ok := w.leaderRef()
		if !ok {
			continue
		}
		w.mu.Lock()
		serial := w.serial
		w.serial++
		w.mu.Unlock()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		id, err := w.exportOnce(ctx, r, serial)
		cancel()
		w.mu.Lock()
		if err != nil {
			w.errs++
		} else {
			w.acked = append(w.acked, ackedExport{id: id, serial: serial})
		}
		w.mu.Unlock()
	}
}

func (w *soakWorkload) exportOnce(ctx context.Context, r ref.ServiceRef, serial int) (string, error) {
	tc, err := trader.DialTrader(ctx, w.pool, r)
	if err != nil {
		return "", err
	}
	tc.FollowLeaderHints(true)
	return tc.Export(ctx, soakServiceType,
		ref.New(fmt.Sprintf("tcp:10.9.%d.%d:7000", serial/250, serial%250), soakServiceType),
		[]sidl.Property{
			{Name: "CarModel", Value: sidl.EnumLit("FIAT_Uno")},
			{Name: "AverageMilage", Value: sidl.IntLit(int64(serial))},
			{Name: "ChargePerDay", Value: sidl.FloatLit(float64(40 + serial%60))},
			{Name: "ChargeCurrency", Value: sidl.EnumLit("USD")},
		})
}

func (w *soakWorkload) close() (acked []ackedExport, errs int) {
	close(w.stop)
	<-w.done
	w.pool.Close()
	return w.acked, w.errs
}

// runSoak stands the cluster up, runs the seeded fault schedule with
// the workload and checker live, heals everything, and verifies the
// final invariants.
func runSoak(w io.Writer, sc soakConfig) error {
	if sc.nodes < 3 || sc.nodes > 5 {
		return fmt.Errorf("-soak-nodes %d: cluster must be 3-5 nodes", sc.nodes)
	}
	rng := rand.New(rand.NewSource(sc.seed))
	fmt.Fprintf(w, "COSM chaos soak: %d nodes, %d rounds, seed %d, election timeout %v\n",
		sc.nodes, sc.rounds, sc.seed, soakElectionTimeout)

	endpoints, refs := soakEndpoints(sc.nodes)
	nodes := make([]*soakNode, sc.nodes)
	for i := range nodes {
		var peers []string
		for j := range refs {
			if j != i {
				peers = append(peers, refs[j].String())
			}
		}
		nodes[i] = &soakNode{
			idx:      i,
			id:       fmt.Sprintf("n%d", i),
			dir:      fmt.Sprintf("%s/node-%d", soakTempDir(), i),
			endpoint: endpoints[i],
			ref:      refs[i],
			peers:    peers,
			faults:   wire.NewFaultNet(wire.FaultConfig{Seed: sc.seed + int64(i)}, wire.DialConnContext),
			events:   obs.NewEventLog(fmt.Sprintf("n%d", i), 512),
		}
	}
	viol := &soakViolations{}
	checker := newSoakChecker(nodes, viol)
	for _, n := range nodes {
		n := n
		n.onPromote = func(epoch uint64) { checker.onElect(n.id, epoch) }
	}
	defer func() {
		for _, n := range nodes {
			n.kill()
		}
	}()
	for _, n := range nodes {
		if err := n.start(); err != nil {
			return err
		}
	}
	// Bootstrap: node 0 leads at epoch 1, the others follow it.
	n0, _, _, _ := nodes[0].snapshot()
	if err := n0.Promote(1); err != nil {
		return err
	}
	for _, n := range nodes[1:] {
		tr, _, _, _ := n.snapshot()
		tr.SetFollower(refs[0].String())
		n.fl.Retarget(refs[0].String())
	}
	if err := n0.DefineTypeSIDL(sidl.CarRentalIDL); err != nil {
		return err
	}

	go checker.run()
	work := newSoakWorkload(nodes)
	go work.run()

	d := &soakDriver{w: w, nodes: nodes, rng: rng, viol: viol}
	events := []func(){d.leaderKill, d.leaderIsolate, d.partition, d.asymPartition, d.diskFault, d.followerChurn}
	names := []string{"leader-kill", "leader-isolate", "partition", "asym-partition", "disk-fault", "follower-churn"}
	perm := rng.Perm(len(events))
	for round := 0; round < sc.rounds; round++ {
		pick := perm[round%len(events)]
		fmt.Fprintf(w, "round %d: %s\n", round+1, names[pick])
		events[pick]()
		time.Sleep(2 * soakElectionTimeout)
	}

	// Heal the world: clear every partition, restart every dead or
	// fail-stopped node, stop the workload, and let the cluster quiesce.
	d.healAll()
	acked, errs := work.close()
	leader, err := d.quiesce(20 * time.Second)
	if err != nil {
		viol.addf("no converged leader after healing: %v", err)
	}
	checker.close()

	fmt.Fprintf(w, "workload: %d acknowledged exports, %d rejected/timed out\n", len(acked), errs)
	if d.failovers > 0 {
		fmt.Fprintf(w, "failovers: %d, detection+election latency min=%v avg=%v max=%v\n",
			d.failovers, d.latMin.Round(time.Millisecond),
			(d.latSum / time.Duration(d.failovers)).Round(time.Millisecond),
			d.latMax.Round(time.Millisecond))
	}

	if leader != nil {
		d.verifyFinal(leader, acked, viol)
	}

	if vs := viol.all(); len(vs) > 0 {
		for _, v := range vs {
			fmt.Fprintf(w, "INVARIANT VIOLATION: %s\n", v)
		}
		// The post-mortem: every node's lifecycle timeline, merged into
		// one causally ordered cluster view — the same picture `cosmcli
		// events` would assemble from live daemons.
		fmt.Fprintln(w, "cluster event timeline:")
		printSoakTimeline(w, nodes)
		return fmt.Errorf("soak failed: %d invariant violation(s)", len(vs))
	}
	fmt.Fprintln(w, "invariants: clean")
	return nil
}

// printSoakTimeline merges and prints every node's event log.
func printSoakTimeline(w io.Writer, nodes []*soakNode) {
	logs := make([][]obs.Event, 0, len(nodes))
	for _, n := range nodes {
		logs = append(logs, n.events.Events())
	}
	for _, e := range obs.MergeEvents(logs...) {
		fmt.Fprintf(w, "  %s %-4s %-18s", e.Time.Format("15:04:05.000"), e.Node, e.Kind)
		keys := make([]string, 0, len(e.Attr))
		for k := range e.Attr {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%s", k, e.Attr[k])
		}
		fmt.Fprintln(w)
	}
}

// soakDriver executes the fault schedule and tracks failover latency.
type soakDriver struct {
	w     io.Writer
	nodes []*soakNode
	rng   *rand.Rand
	viol  *soakViolations

	failovers              int
	latMin, latMax, latSum time.Duration
}

// leader returns the highest-epoch live node claiming leadership.
func (d *soakDriver) leader() *soakNode {
	var best *soakNode
	bestEpoch := uint64(0)
	for _, n := range d.nodes {
		tr, _, _, alive := n.snapshot()
		if !alive || tr == nil {
			continue
		}
		if st := tr.Status(); st.Role == trader.RoleLeader && (best == nil || st.Epoch > bestEpoch) {
			best, bestEpoch = n, st.Epoch
		}
	}
	return best
}

// awaitNewLeader waits for a live leader other than excluded and
// records the failover latency from t0.
func (d *soakDriver) awaitNewLeader(excluded *soakNode, t0 time.Time) *soakNode {
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if l := d.leader(); l != nil && l != excluded {
			lat := time.Since(t0)
			d.failovers++
			d.latSum += lat
			if d.latMin == 0 || lat < d.latMin {
				d.latMin = lat
			}
			if lat > d.latMax {
				d.latMax = lat
			}
			fmt.Fprintf(d.w, "  new leader %s at epoch %d after %v\n",
				l.id, l.tr.Epoch(), lat.Round(time.Millisecond))
			return l
		}
		time.Sleep(10 * time.Millisecond)
	}
	d.viol.addf("no new leader elected within 15s (previous: %s)", excluded.id)
	return nil
}

func (d *soakDriver) leaderKill() {
	l := d.leader()
	if l == nil {
		fmt.Fprintln(d.w, "  (no leader to kill)")
		return
	}
	fmt.Fprintf(d.w, "  kill -9 leader %s\n", l.id)
	t0 := time.Now()
	l.kill()
	if d.awaitNewLeader(l, t0) == nil {
		return
	}
	// The old leader restarts on its old data dir, discovers it was
	// deposed, and rejoins as a follower.
	if err := l.start(); err != nil {
		d.viol.addf("restart %s: %v", l.id, err)
	}
}

func (d *soakDriver) leaderIsolate() {
	l := d.leader()
	if l == nil {
		fmt.Fprintln(d.w, "  (no leader to isolate)")
		return
	}
	fmt.Fprintf(d.w, "  partition leader %s away from every peer\n", l.id)
	t0 := time.Now()
	for _, n := range d.nodes {
		if n != l {
			n.faults.Block(l.endpoint)
			l.faults.Block(n.endpoint)
		}
	}
	d.awaitNewLeader(l, t0)
	// Heal: the deposed leader finds the new epoch and demote-rejoins.
	for _, n := range d.nodes {
		if n != l {
			n.faults.Unblock(l.endpoint)
			l.faults.Unblock(n.endpoint)
		}
	}
}

func (d *soakDriver) partition() {
	// Symmetric split: a random minority against the rest.
	k := 1
	if len(d.nodes) >= 5 {
		k = 2
	}
	minority := map[int]bool{}
	for len(minority) < k {
		minority[d.rng.Intn(len(d.nodes))] = true
	}
	fmt.Fprintf(d.w, "  symmetric partition: minority %v\n", soakKeys(minority))
	sever := func(block bool) {
		for i, a := range d.nodes {
			for j, b := range d.nodes {
				if i != j && minority[i] != minority[j] {
					if block {
						a.faults.Block(b.endpoint)
					} else {
						a.faults.Unblock(b.endpoint)
					}
				}
			}
		}
	}
	sever(true)
	// If the leader landed in the minority the majority elects past it;
	// either way the minority must never promote (quorum fencing).
	time.Sleep(4 * soakElectionTimeout)
	sever(false)
}

func (d *soakDriver) asymPartition() {
	i := d.rng.Intn(len(d.nodes))
	j := d.rng.Intn(len(d.nodes) - 1)
	if j >= i {
		j++
	}
	a, b := d.nodes[i], d.nodes[j]
	fmt.Fprintf(d.w, "  asymmetric partition: %s cannot reach %s\n", a.id, b.id)
	a.faults.Block(b.endpoint)
	time.Sleep(4 * soakElectionTimeout)
	a.faults.Unblock(b.endpoint)
}

func (d *soakDriver) diskFault() {
	// Latch a fail-stop on a random live node's journal: its next fsync
	// fails, the journal refuses further writes, and the trader demotes
	// itself rather than acknowledging unpersistable mutations.
	var victims []*soakNode
	for _, n := range d.nodes {
		if _, j, _, alive := n.snapshot(); alive && j != nil && j.Failed() == nil {
			victims = append(victims, n)
		}
	}
	if len(victims) == 0 {
		fmt.Fprintln(d.w, "  (no healthy journal to fault)")
		return
	}
	v := victims[d.rng.Intn(len(victims))]
	_, j, _, _ := v.snapshot()
	wasLeader := d.leader() == v
	fmt.Fprintf(d.w, "  disk fault on %s (leader=%v): next fsync fails\n", v.id, wasLeader)
	v.inj.FailNow(journal.FaultFsync, fmt.Errorf("soak: injected fsync fault"))
	t0 := time.Now()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) && j.Failed() == nil {
		time.Sleep(10 * time.Millisecond)
	}
	if j.Failed() == nil {
		fmt.Fprintln(d.w, "  (no write arrived to trip the fault; disarming)")
	} else if wasLeader {
		d.awaitNewLeader(v, t0)
	}
	// "Replace the disk": restart the node on the same directory with a
	// fresh, fault-free journal handle.
	v.kill()
	if err := v.start(); err != nil {
		d.viol.addf("restart %s after disk fault: %v", v.id, err)
	}
}

func (d *soakDriver) followerChurn() {
	l := d.leader()
	var followers []*soakNode
	for _, n := range d.nodes {
		if _, _, _, alive := n.snapshot(); alive && n != l {
			followers = append(followers, n)
		}
	}
	if len(followers) == 0 {
		fmt.Fprintln(d.w, "  (no follower to churn)")
		return
	}
	f := followers[d.rng.Intn(len(followers))]
	fmt.Fprintf(d.w, "  churn follower %s: kill, pause, restart\n", f.id)
	f.kill()
	time.Sleep(2 * soakElectionTimeout)
	if err := f.start(); err != nil {
		d.viol.addf("restart %s: %v", f.id, err)
	}
}

// healAll clears every partition and restarts every dead node.
func (d *soakDriver) healAll() {
	for _, a := range d.nodes {
		for _, b := range d.nodes {
			if a != b {
				a.faults.Unblock(b.endpoint)
			}
		}
	}
	for _, n := range d.nodes {
		if _, j, _, alive := n.snapshot(); !alive {
			if err := n.start(); err != nil {
				d.viol.addf("final restart %s: %v", n.id, err)
			}
		} else if j != nil && j.Failed() != nil {
			n.kill()
			if err := n.start(); err != nil {
				d.viol.addf("final restart %s: %v", n.id, err)
			}
		}
	}
}

// quiesce waits until one stable leader exists and every node has
// applied its whole log.
func (d *soakDriver) quiesce(timeout time.Duration) (*trader.Trader, error) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		l := d.leader()
		if l == nil {
			time.Sleep(20 * time.Millisecond)
			continue
		}
		ltr, _, _, _ := l.snapshot()
		if ltr == nil {
			continue
		}
		target := ltr.Status()
		settled := true
		for _, n := range d.nodes {
			tr, _, _, alive := n.snapshot()
			if !alive || tr == nil {
				settled = false
				break
			}
			if n == l {
				continue
			}
			st := tr.Status()
			if st.Role != trader.RoleFollower || st.Epoch != target.Epoch || st.Applied != target.LastSeq {
				settled = false
				break
			}
		}
		if settled {
			fmt.Fprintf(d.w, "quiesced: leader %s, epoch %d, %d records\n", l.id, target.Epoch, target.LastSeq)
			return ltr, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return nil, fmt.Errorf("cluster did not settle within %v", timeout)
}

// verifyFinal checks the post-quiesce invariants: zero lost
// acknowledged exports and byte-identical import results everywhere.
func (d *soakDriver) verifyFinal(leader *trader.Trader, acked []ackedExport, viol *soakViolations) {
	ctx := context.Background()
	want, err := soakCanonicalOffers(ctx, leader)
	if err != nil {
		viol.addf("final leader import: %v", err)
		return
	}
	have := map[string]bool{}
	offers, _ := leader.Import(ctx, trader.ImportRequest{Type: soakServiceType})
	for _, o := range offers {
		have[o.ID] = true
	}
	lost := 0
	for _, a := range acked {
		if !have[a.id] {
			lost++
			if lost <= 5 {
				viol.addf("acknowledged export %s (serial %d) lost", a.id, a.serial)
			}
		}
	}
	if lost > 5 {
		viol.addf("... and %d more lost acknowledged exports", lost-5)
	}
	for _, n := range d.nodes {
		tr, _, _, alive := n.snapshot()
		if !alive || tr == nil || tr == leader {
			continue
		}
		got, err := soakCanonicalOffers(ctx, tr)
		if err != nil {
			viol.addf("node %s final import: %v", n.id, err)
			continue
		}
		if string(got) != string(want) {
			viol.addf("node %s diverges from the leader after quiesce (%d vs %d bytes)",
				n.id, len(got), len(want))
		}
	}
	fmt.Fprintf(d.w, "final check: %d offers on the leader, %d acked exports verified, replicas byte-identical\n",
		len(offers), len(acked))
}

// soakCanonicalOffers renders a trader's full import result in
// canonical journal-record form, sorted by offer ID — byte equality
// here is the convergence criterion.
func soakCanonicalOffers(ctx context.Context, tr *trader.Trader) ([]byte, error) {
	offers, err := tr.Import(ctx, trader.ImportRequest{Type: soakServiceType})
	if err != nil {
		return nil, err
	}
	recs := make([]trader.OfferRecord, len(offers))
	for i, o := range offers {
		recs[i] = o.Record()
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].ID < recs[j].ID })
	return json.Marshal(recs)
}

// soakEndpoints reserves n listen ports up front: every member's
// -cluster view must name the others before any of them is up, and a
// restarted node must come back on the same address.
func soakEndpoints(n int) ([]string, []ref.ServiceRef) {
	endpoints := make([]string, n)
	refs := make([]ref.ServiceRef, n)
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		listeners[i] = l
		endpoints[i] = fmt.Sprintf("tcp:127.0.0.1:%d", l.Addr().(*net.TCPAddr).Port)
		refs[i] = ref.New(endpoints[i], trader.ServiceName)
	}
	for _, l := range listeners {
		_ = l.Close()
	}
	return endpoints, refs
}

// soakTempDir hosts the per-node data directories for one run.
func soakTempDir() string {
	soakDirOnce.Do(func() {
		dir, err := os.MkdirTemp("", "cosm-soak-*")
		if err != nil {
			panic(err)
		}
		soakDir = dir
	})
	return soakDir
}

var (
	soakDirOnce sync.Once
	soakDir     string
)

func soakKeys(m map[int]bool) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
