package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	done := make(chan string, 1)
	go func() {
		var b strings.Builder
		_, _ = io.Copy(&b, r)
		done <- b.String()
	}()
	runErr := f()
	_ = w.Close()
	return <-done, runErr
}

func TestDefaultRun(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-days", "90"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"COSM market simulation: 90 days",
		"trading-only",
		"mediation-only",
		"integrated",
		"crossover (section 2.3)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestTimelineFlag(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"-days", "60", "-timeline"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "trading-net") {
		t.Fatalf("timeline header missing:\n%s", out)
	}
}

// TestChaosMode runs the live fault-injection market end to end: all
// bookings must complete despite injected faults and a mid-run provider
// crash, and the sweeper must withdraw the dead offer.
func TestChaosMode(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-chaos", "-chaos-bookings", "4", "-seed", "7"})
	})
	if err != nil {
		t.Fatalf("chaos run failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"COSM chaos market: seed 7",
		// Booking counts depend on the injected fault schedule meeting
		// real TCP timing, so assert the invariants, not exact tallies:
		// the cheapest provider serves phase 1, its successor phase 2.
		"phase 1 (all live):",
		"ElbeRental=",
		"crashed ElbeRental (cheapest)",
		"phase 2 (failover):",
		"AlsterCars=",
		// The sweeps run over a clean transport: deterministic.
		"sweep 1: checked=3 healthy=2 suspected=1 withdrawn=0",
		"sweep 2: checked=3 healthy=2 suspected=0 withdrawn=1",
		"post-sweep import: 2 offer(s) remain",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output lacks %q:\n%s", want, out)
		}
	}
}

// TestMeshMode runs the federated-mesh demo end to end: after one
// gossip round every import must be routed to exactly one peer.
func TestMeshMode(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-mesh", "-mesh-traders", "8", "-mesh-imports", "20", "-seed", "3"})
	})
	if err != nil {
		t.Fatalf("mesh run failed: %v\n%s", err, out)
	}
	for _, want := range []string{
		"federated trader mesh: 8 traders",
		"full fan-out                        7.0",
		"summary-routed                      1.0",
		"scatter narrowed 7.0x",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("output lacks %q:\n%s", want, out)
		}
	}
}

func TestBadFlags(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-days", "banana"}) }); err == nil {
		t.Fatal("bad flag value must fail")
	}
	if _, err := capture(t, func() error { return run([]string{"-days", "0"}) }); err == nil {
		t.Fatal("invalid parameters must fail")
	}
}
