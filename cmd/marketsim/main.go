// Command marketsim runs the Common Open Service Market simulation of
// sections 2.2 and 2.3: it compares the trading-only, mediation-only and
// integrated COSM regimes on time-to-market and transition costs, and
// prints the per-day series behind experiments E7 and E8.
//
// Usage:
//
//	marketsim                         # default parameters, summary table
//	marketsim -days 730 -delay 120    # two years, slower standardisation
//	marketsim -timeline               # also dump the cumulative series
//	marketsim -chaos                  # live market under fault injection
//	marketsim -soak -seed 7           # replicated-cluster chaos soak
//	marketsim -mesh -mesh-traders 20  # federated trader mesh, routed vs full scatter
//
// With -chaos the command instead stands up a real market (trader,
// browser, three providers) over local TCP, injects transport faults on
// the client side, crashes the cheapest provider mid-run, and reports
// how retries, bind failover and the trader's liveness sweeper cope.
//
// With -soak it stands up a replicated trader cluster with automatic
// failover and drives it through a seeded schedule of leader crashes,
// partitions, disk faults and follower churn, continuously checking the
// HA invariants (one leader per epoch, monotonic epochs, zero lost
// acknowledged exports, byte-identical convergence); see soak.go.
package main

import (
	"flag"
	"fmt"
	"os"

	"cosm/internal/market"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "marketsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("marketsim", flag.ContinueOnError)
	p := market.DefaultParams()
	fs.IntVar(&p.Days, "days", p.Days, "simulated days")
	fs.Int64Var(&p.Seed, "seed", p.Seed, "random seed")
	fs.IntVar(&p.StandardisationDelayDays, "delay", p.StandardisationDelayDays, "standardisation delay in days")
	fs.Float64Var(&p.ProviderArrivalPerDay, "providers", p.ProviderArrivalPerDay, "provider arrivals per day")
	fs.Float64Var(&p.ClientArrivalPerDay, "clients", p.ClientArrivalPerDay, "client arrivals per day")
	fs.Float64Var(&p.CostClientDev, "clientdev", p.CostClientDev, "per-client static adaptation cost")
	fs.Float64Var(&p.CostGenericUseOverhead, "overhead", p.CostGenericUseOverhead, "per-use generic-client overhead")
	timeline := fs.Bool("timeline", false, "print the per-day cumulative series")
	chaos := fs.Bool("chaos", false, "run the live fault-injection market instead of the discrete-event simulation")
	soak := fs.Bool("soak", false, "run the replicated-cluster chaos soak (self-healing HA under a seeded fault schedule)")
	mesh := fs.Bool("mesh", false, "run the federated trader mesh demo (summary-routed vs full scatter)")
	cc := registerChaosFlags(fs)
	sc := registerSoakFlags(fs)
	mc := registerMeshFlags(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *chaos {
		cc.seed = p.Seed
		return runChaos(os.Stdout, *cc)
	}
	if *soak {
		sc.seed = p.Seed
		return runSoak(os.Stdout, *sc)
	}
	if *mesh {
		mc.seed = p.Seed
		return runMesh(os.Stdout, *mc)
	}

	results, err := market.Compare(p)
	if err != nil {
		return err
	}

	fmt.Printf("COSM market simulation: %d days, seed %d, standardisation delay %d days\n\n",
		p.Days, p.Seed, p.StandardisationDelayDays)
	fmt.Printf("%-16s %10s %10s %10s %12s %12s %12s %12s %10s %10s\n",
		"regime", "served", "unmet", "ttfu(d)", "provider$", "clientdev$", "overhead$", "net-utility", "categories", "1st-mover")
	for _, regime := range []market.Regime{market.TradingOnly, market.MediationOnly, market.Integrated} {
		m := results[regime]
		fmt.Printf("%-16s %10d %10d %10.1f %12.1f %12.1f %12.1f %12.1f %10d %9.0f%%\n",
			m.Regime, m.UsesServed, m.UnmetDemand, m.MeanTimeToFirstUse,
			m.ProviderCost, m.ClientDevCost, m.OverheadCost, m.NetUtility, m.Categories,
			100*m.FirstMoverShare)
	}

	if n, err := market.CrossoverUses(p); err == nil {
		fmt.Printf("\nper-client crossover (section 2.3): static adaptation pays off after %.0f uses\n", n)
	}

	if *timeline {
		fmt.Printf("\n%-6s %14s %14s %14s\n", "day", "trading-net", "mediation-net", "integrated-net")
		tr := results[market.TradingOnly].Timeline
		me := results[market.MediationOnly].Timeline
		in := results[market.Integrated].Timeline
		step := len(tr) / 24
		if step == 0 {
			step = 1
		}
		for i := 0; i < len(tr); i += step {
			fmt.Printf("%-6d %14.1f %14.1f %14.1f\n",
				tr[i].Day, tr[i].NetUtility, me[i].NetUtility, in[i].NetUtility)
		}
	}
	return nil
}
