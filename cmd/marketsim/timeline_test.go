package main

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"cosm/internal/obs"
	"cosm/internal/sidl"
	"cosm/internal/trader"
	"cosm/internal/wire"
)

// TestLeaderKillTimeline kills the leader of a three-node cluster and
// asserts the merged cluster event timeline tells the failover story in
// causal order: suspicion, a candidacy, a granted vote, the promotion —
// and, once the old leader restarts, its rejoin.
func TestLeaderKillTimeline(t *testing.T) {
	endpoints, refs := soakEndpoints(3)
	nodes := make([]*soakNode, 3)
	for i := range nodes {
		var peers []string
		for j := range refs {
			if j != i {
				peers = append(peers, refs[j].String())
			}
		}
		nodes[i] = &soakNode{
			idx:      i,
			id:       fmt.Sprintf("n%d", i),
			dir:      t.TempDir(),
			endpoint: endpoints[i],
			ref:      refs[i],
			peers:    peers,
			faults:   wire.NewFaultNet(wire.FaultConfig{Seed: int64(i) + 1}, wire.DialConnContext),
			events:   obs.NewEventLog(fmt.Sprintf("n%d", i), 256),
		}
	}
	defer func() {
		for _, n := range nodes {
			n.kill()
		}
	}()
	for _, n := range nodes {
		if err := n.start(); err != nil {
			t.Fatal(err)
		}
	}
	n0, _, _, _ := nodes[0].snapshot()
	if err := n0.Promote(1); err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes[1:] {
		tr, _, _, _ := n.snapshot()
		tr.SetFollower(refs[0].String())
		n.fl.Retarget(refs[0].String())
	}
	if err := n0.DefineTypeSIDL(sidl.CarRentalIDL); err != nil {
		t.Fatal(err)
	}

	nodes[0].kill()
	waitLeader := func() bool {
		for _, n := range nodes[1:] {
			if tr, _, _, alive := n.snapshot(); alive && tr != nil && tr.Role() == trader.RoleLeader {
				return true
			}
		}
		return false
	}
	deadline := time.Now().Add(15 * time.Second)
	for !waitLeader() {
		if time.Now().After(deadline) {
			t.Fatal("no replacement leader elected")
		}
		time.Sleep(50 * time.Millisecond)
	}
	// Restart the old leader: it must discover the winner and rejoin.
	if err := nodes[0].start(); err != nil {
		t.Fatal(err)
	}
	rejoined := func() bool {
		tr, _, _, alive := nodes[0].snapshot()
		return alive && tr != nil && tr.Role() == trader.RoleFollower && tr.Epoch() >= 2
	}
	for !rejoined() {
		if time.Now().After(deadline) {
			t.Fatal("old leader never rejoined")
		}
		time.Sleep(50 * time.Millisecond)
	}

	var sb strings.Builder
	printSoakTimeline(&sb, nodes)
	out := sb.String()
	// Scan forward: each stage must appear after the previous one (the
	// bootstrap promotion at epoch 1 precedes the kill, so a global
	// search would find the wrong promote).
	pos := 0
	for _, kind := range []string{"suspect", "candidacy", "vote_granted", "promote", "demote_rejoin"} {
		i := strings.Index(out[pos:], kind)
		if i < 0 {
			t.Fatalf("timeline missing %q after offset %d:\n%s", kind, pos, out)
		}
		pos += i + len(kind)
	}
}
