package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/trader"
	"cosm/internal/typemgr"
)

// meshConfig parameterises the federated-mesh demo.
type meshConfig struct {
	seed    int64
	traders int
	offers  int
	imports int
}

func registerMeshFlags(fs *flag.FlagSet) *meshConfig {
	mc := &meshConfig{}
	fs.IntVar(&mc.traders, "mesh-traders", 20, "traders in the federated mesh")
	fs.IntVar(&mc.offers, "mesh-offers", 5, "offers exported per trader")
	fs.IntVar(&mc.imports, "mesh-imports", 100, "federated imports per phase")
	return mc
}

// runMesh stands up a fully linked in-process trader mesh where each
// trader holds offers of its own service type, then contrasts the two
// scatter regimes of a federated import: before gossip every import
// fans out to all peers (nobody knows who holds what), after one
// offer-summary gossip round the same imports are routed to the single
// peer whose summary covers the requested type.
func runMesh(w io.Writer, mc meshConfig) error {
	if mc.traders < 2 {
		return fmt.Errorf("-mesh-traders must be at least 2")
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(mc.seed))

	fmt.Fprintf(w, "federated trader mesh: %d traders, full mesh (%d links), %d offers each, seed %d\n\n",
		mc.traders, mc.traders*(mc.traders-1), mc.offers, mc.seed)

	// Each trader standardises and serves its own service type: the
	// sharpest case for summary routing, since exactly one peer can
	// answer any given import.
	typeName := func(i int) string { return fmt.Sprintf("MeshService%02d", i) }
	traders := make([]*trader.Trader, mc.traders)
	for i := range traders {
		repo := typemgr.NewRepo()
		st := typemgr.ServiceType{
			Name: typeName(i),
			Attrs: []typemgr.AttrDef{
				{Name: "Price", Type: sidl.Basic(sidl.Float64)},
			},
		}
		if err := repo.Define(&st); err != nil {
			return err
		}
		traders[i] = trader.New(fmt.Sprintf("mesh-%02d", i), repo)
		for k := 0; k < mc.offers; k++ {
			target := fmt.Sprintf("tcp:10.42.%d.%d:7000", i, k+1)
			if _, err := traders[i].Export(typeName(i),
				ref.New(target, typeName(i)),
				[]sidl.Property{{Name: "Price", Value: sidl.FloatLit(10 + float64(rng.Intn(90)))}}); err != nil {
				return err
			}
		}
	}
	for i, a := range traders {
		for j, b := range traders {
			if i == j {
				continue
			}
			if err := a.AddLink(fmt.Sprintf("mesh-%02d", j), b); err != nil {
				return err
			}
		}
	}

	// One import phase: random requester asks for a random other
	// trader's type with a one-hop budget.
	phase := func() (peersPerImport float64, p99 time.Duration, found int, err error) {
		var asked uint64
		lat := make([]time.Duration, 0, mc.imports)
		for n := 0; n < mc.imports; n++ {
			from := rng.Intn(mc.traders)
			to := rng.Intn(mc.traders)
			for to == from {
				to = rng.Intn(mc.traders)
			}
			before := traders[from].FedStats()
			start := time.Now()
			offers, ierr := traders[from].ImportWith(ctx, typeName(to), trader.Hops(1))
			if ierr != nil {
				return 0, 0, 0, ierr
			}
			lat = append(lat, time.Since(start))
			asked += traders[from].FedStats().PeersAsked - before.PeersAsked
			if len(offers) == mc.offers {
				found++
			}
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return float64(asked) / float64(mc.imports), lat[len(lat)*99/100], found, nil
	}

	full, fullP99, fullFound, err := phase()
	if err != nil {
		return err
	}

	// One gossip round per trader teaches the whole mesh who holds what.
	start := time.Now()
	for _, t := range traders {
		if _, failed := t.GossipRound(ctx, time.Second); failed > 0 {
			return fmt.Errorf("gossip round reported %d failed pushes", failed)
		}
	}
	gossipTook := time.Since(start)

	routed, routedP99, routedFound, err := phase()
	if err != nil {
		return err
	}

	fmt.Fprintf(w, "%-22s %16s %12s %10s\n", "phase", "peers/import", "p99", "complete")
	fmt.Fprintf(w, "%-22s %16.1f %12s %9d%%\n", "full fan-out", full, fullP99.Round(time.Microsecond), 100*fullFound/mc.imports)
	fmt.Fprintf(w, "%-22s %16.1f %12s %9d%%\n", "summary-routed", routed, routedP99.Round(time.Microsecond), 100*routedFound/mc.imports)
	fmt.Fprintf(w, "\ngossip: %d rounds in %v; scatter narrowed %.1fx (%.1f -> %.1f peers per import)\n",
		mc.traders, gossipTook.Round(time.Millisecond), full/routed, full, routed)
	return nil
}
