// Command sidlc is the SIDL compiler front end: it checks, pretty-prints
// and inspects Service Interface Descriptions.
//
// Usage:
//
//	sidlc check  service.sidl...   # parse + validate, report errors
//	sidlc fmt    service.sidl      # print canonical form
//	sidlc info   service.sidl      # summary: ops, types, extensions
//	sidlc ui     service.sidl      # render the generated user interface
//
// With no file arguments, sidlc reads one description from stdin.
package main

import (
	"fmt"
	"io"
	"os"

	"cosm/internal/sidl"
	"cosm/internal/typemgr"
	"cosm/internal/uiform"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sidlc:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: sidlc <check|fmt|info|ui> [file...]")
	}
	cmd, files := args[0], args[1:]

	sources := map[string]string{}
	if len(files) == 0 {
		src, err := io.ReadAll(os.Stdin)
		if err != nil {
			return err
		}
		sources["<stdin>"] = string(src)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		sources[f] = string(src)
	}

	failed := false
	for name, src := range sources {
		sid, err := sidl.Parse(src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			failed = true
			continue
		}
		switch cmd {
		case "check":
			fmt.Printf("%s: ok (%s, %d ops)\n", name, sid.ServiceName, len(sid.Ops))
		case "fmt":
			fmt.Print(sid.IDL())
		case "info":
			printInfo(name, sid)
		case "ui":
			fmt.Print(uiform.RenderAll(sid))
		default:
			return fmt.Errorf("unknown command %q", cmd)
		}
	}
	if failed {
		return fmt.Errorf("some descriptions failed to check")
	}
	return nil
}

func printInfo(name string, sid *sidl.SID) {
	fmt.Printf("%s: module %s\n", name, sid.ServiceName)
	if sid.Doc != "" {
		fmt.Printf("  doc: %s\n", sid.Doc)
	}
	fmt.Printf("  types (%d):\n", len(sid.Types))
	for _, t := range sid.Types {
		fmt.Printf("    %-20s %s\n", t.Name, t.Kind)
	}
	fmt.Printf("  operations (%d):\n", len(sid.Ops))
	for _, op := range sid.Ops {
		fmt.Printf("    %s %s(", op.Result, op.Name)
		for i, p := range op.Params {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("%s %s %s", p.Dir, p.Type, p.Name)
		}
		fmt.Println(")")
	}
	if sid.FSM.Restricted() {
		fmt.Printf("  fsm: %s\n", sid.FSM)
	}
	if sid.Trader != nil {
		fmt.Printf("  trader export: type %s, id %d, %d properties\n",
			sid.Trader.TypeOfService, sid.Trader.ServiceID, len(sid.Trader.Properties))
		if st, err := typemgr.FromSID(sid); err == nil {
			for _, a := range st.Attrs {
				fmt.Printf("    %-20s %s\n", a.Name, a.Type)
			}
		}
	}
	if sid.UI != nil {
		fmt.Printf("  ui annotations: %d docs, %d widget hints\n", len(sid.UI.Docs), len(sid.UI.Widgets))
	}
	for _, m := range sid.Unknown {
		fmt.Printf("  unknown extension module: %s (preserved)\n", m.Name)
	}
}
