package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// capture runs f with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, f func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()

	done := make(chan string, 1)
	go func() {
		var b strings.Builder
		_, _ = io.Copy(&b, r)
		done <- b.String()
	}()
	runErr := f()
	_ = w.Close()
	return <-done, runErr
}

func TestCheckValidFile(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"check", "testdata/carrental.sidl"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ok (CarRentalService, 2 ops)") {
		t.Fatalf("output = %q", out)
	}
}

func TestCheckBrokenFile(t *testing.T) {
	_, err := capture(t, func() error { return run([]string{"check", "testdata/broken.sidl"}) })
	if err == nil {
		t.Fatal("check of broken file must fail")
	}
}

func TestFmtRoundTrips(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"fmt", "testdata/carrental.sidl"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"module CarRentalService {",
		"interface COSM_Operations {",
		"module COSM_Future {",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("fmt output lacks %q:\n%s", want, out)
		}
	}
}

func TestInfo(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"info", "testdata/carrental.sidl"}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"module CarRentalService",
		"operations (2):",
		"fsm: INIT:",
		"trader export: type CarRentalService, id 4711",
		"unknown extension module: COSM_Future (preserved)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("info output lacks %q:\n%s", want, out)
		}
	}
}

func TestUI(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"ui", "testdata/carrental.sidl"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "model: (AUDI | FIAT_Uno | VW_Golf)") {
		t.Fatalf("ui output lacks generated choice widget:\n%s", out)
	}
}

func TestUsageErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no args must fail")
	}
	if _, err := capture(t, func() error { return run([]string{"frobnicate", "testdata/carrental.sidl"}) }); err == nil {
		t.Fatal("unknown command must fail")
	}
	if err := run([]string{"check", "testdata/missing.sidl"}); err == nil {
		t.Fatal("missing file must fail")
	}
}
