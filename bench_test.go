// Package bench is the experiment harness: one benchmark group per
// figure / evaluation claim of the paper, as indexed in DESIGN.md and
// recorded in EXPERIMENTS.md.
//
// The paper (ICDCS '94) is an architecture paper with no quantitative
// tables; Figures 1-7 depict interactions. Each group below exercises
// exactly the depicted interaction on the real implementation and
// measures it, and the Sec22/Sec23 groups quantify the prose claims of
// sections 2.2 and 2.3 via the market simulator.
//
//	go test -bench=. -benchmem
package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"cosm/internal/activity"
	"cosm/internal/browser"
	"cosm/internal/carrental"
	"cosm/internal/cosm"
	"cosm/internal/genclient"
	"cosm/internal/journal"
	"cosm/internal/market"
	"cosm/internal/naming"
	"cosm/internal/obs"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/stub"
	"cosm/internal/trader"
	"cosm/internal/typemgr"
	"cosm/internal/uiform"
	"cosm/internal/wire"
	"cosm/internal/xcode"
)

// ---------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------

func quietNode() *cosm.Node {
	return cosm.NewNode(cosm.WithNodeLog(func(string, ...any) {}))
}

func newCarRepo(b *testing.B) *typemgr.Repo {
	b.Helper()
	repo := typemgr.NewRepo()
	st, err := typemgr.FromSID(sidl.CarRentalSID())
	if err != nil {
		b.Fatal(err)
	}
	if err := repo.Define(st); err != nil {
		b.Fatal(err)
	}
	return repo
}

func carProps(charge float64) []sidl.Property {
	return []sidl.Property{
		{Name: "CarModel", Value: sidl.EnumLit("FIAT_Uno")},
		{Name: "AverageMilage", Value: sidl.IntLit(38000)},
		{Name: "ChargePerDay", Value: sidl.FloatLit(charge)},
		{Name: "ChargeCurrency", Value: sidl.EnumLit("USD")},
	}
}

// fillTrader exports n offers spread over prices.
func fillTrader(b *testing.B, tr *trader.Trader, n int) {
	b.Helper()
	for i := 0; i < n; i++ {
		r := ref.New(fmt.Sprintf("tcp:10.0.%d.%d:7000", i/250, i%250), "CarRentalService")
		if _, err := tr.Export("CarRentalService", r, carProps(float64(40+i%100))); err != nil {
			b.Fatal(err)
		}
	}
}

// startRentalNode hosts the full car rental service on a loopback node.
func startRentalNode(b *testing.B, loopName string) (*cosm.Node, ref.ServiceRef) {
	b.Helper()
	svc, _, err := carrental.New()
	if err != nil {
		b.Fatal(err)
	}
	node := quietNode()
	if err := node.Host("CarRentalService", svc); err != nil {
		b.Fatal(err)
	}
	if _, err := node.ListenAndServe("loop:" + loopName); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = node.Close() })
	return node, node.MustRefFor("CarRentalService")
}

// ---------------------------------------------------------------------
// E1 / Fig. 1 — the ODP trader triangle
// ---------------------------------------------------------------------

// BenchmarkFig1_Export measures step 1 of Fig. 1: registering an offer
// (type check + store insert) at an in-process trader.
func BenchmarkFig1_Export(b *testing.B) {
	b.ReportAllocs()
	tr := trader.New("T", newCarRepo(b))
	props := carProps(80)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := ref.New(fmt.Sprintf("tcp:10.0.0.%d:7000", i%250), "svc")
		if _, err := tr.Export("CarRentalService", r, props); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1_Import measures steps 2-3: constrained, policy-ordered
// import against stores of growing size.
func BenchmarkFig1_Import(b *testing.B) {
	b.ReportAllocs()
	for _, size := range []int{16, 256, 4096} {
		b.Run(fmt.Sprintf("offers=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			tr := trader.New("T", newCarRepo(b))
			fillTrader(b, tr, size)
			req := trader.ImportRequest{
				Type:       "CarRentalService",
				Constraint: "ChargePerDay < 60 && ChargeCurrency == USD",
				Policy:     "min:ChargePerDay",
				Max:        5,
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				offers, err := tr.Import(ctx, req)
				if err != nil {
					b.Fatal(err)
				}
				if len(offers) == 0 {
					b.Fatal("no offers")
				}
			}
		})
	}
}

// BenchmarkImport_10kOffers measures the trader's matching hot path at
// market scale — 10k stored offers, 64 concurrent importers, a ~5%
// selective range constraint — across the three engine configurations:
// the pre-redesign linear scan (ablation), indexed type snapshots, and
// indexed snapshots plus the short-TTL import-result cache. The indexed
// path must beat the linear scan by a wide margin (the acceptance bar
// for the sharded-store redesign is >= 5x) with fewer allocations per
// import.
func BenchmarkImport_10kOffers(b *testing.B) {
	const stored = 10_000
	req := trader.ImportRequest{
		Type:       "CarRentalService",
		Constraint: "ChargePerDay < 45", // matches charges 40..44: ~5% of fillTrader's spread
		Policy:     "min:ChargePerDay",
		Max:        5,
	}
	run := func(b *testing.B, tr *trader.Trader) {
		b.Helper()
		fillTrader(b, tr, stored)
		ctx := context.Background()
		if warm, err := tr.Import(ctx, req); err != nil || len(warm) == 0 {
			b.Fatalf("warmup import = %v, %v", warm, err)
		}
		// 64 concurrent importers regardless of core count.
		factor := (64 + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0)
		b.SetParallelism(factor)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				res, err := tr.Import(ctx, req)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) == 0 {
					b.Fatal("no offers")
				}
			}
		})
	}
	b.Run("linear", func(b *testing.B) {
		run(b, trader.New("T", newCarRepo(b), trader.WithoutOfferIndex(), trader.WithImportCacheTTL(0)))
	})
	b.Run("indexed", func(b *testing.B) {
		run(b, trader.New("T", newCarRepo(b), trader.WithImportCacheTTL(0)))
	})
	b.Run("indexed+cache", func(b *testing.B) {
		run(b, trader.New("T", newCarRepo(b)))
	})
}

// BenchmarkFig1_ImportRemote measures the same import across the wire.
func BenchmarkFig1_ImportRemote(b *testing.B) {
	b.ReportAllocs()
	tr := trader.New("T", newCarRepo(b))
	fillTrader(b, tr, 256)
	svc, err := trader.NewService(tr)
	if err != nil {
		b.Fatal(err)
	}
	node := quietNode()
	if err := node.Host(trader.ServiceName, svc); err != nil {
		b.Fatal(err)
	}
	if _, err := node.ListenAndServe("loop:bench-fig1-remote"); err != nil {
		b.Fatal(err)
	}
	defer node.Close()
	ctx := context.Background()
	tc, err := trader.DialTrader(ctx, node.Pool(), node.MustRefFor(trader.ServiceName))
	if err != nil {
		b.Fatal(err)
	}
	req := trader.ImportRequest{Type: "CarRentalService", Constraint: "ChargePerDay < 60", Max: 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tc.Import(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig1_Triangle measures the whole figure: import at the
// trader, direct bind to the selected exporter, one invocation.
func BenchmarkFig1_Triangle(b *testing.B) {
	b.ReportAllocs()
	node, carRef := startRentalNode(b, "bench-fig1-triangle")
	tr := trader.New("T", newCarRepo(b))
	if _, err := tr.Export("CarRentalService", carRef, carProps(80)); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	sel := xcode.Zero(sidl.CarRentalSID().Type("SelectCar_t"))
	if err := sel.SetField("days", xcode.NewInt(sidl.Basic(sidl.Int32), 1)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		offer, err := tr.ImportOne(ctx, trader.ImportRequest{Type: "CarRentalService"})
		if err != nil {
			b.Fatal(err)
		}
		conn, err := cosm.Bind(ctx, node.Pool(), offer.Ref)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := conn.Invoke(ctx, "SelectCar", sel); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// E2 / Fig. 2 — SID subtype extension
// ---------------------------------------------------------------------

// extendedCarSID builds a car rental SID with n extra operations, n
// extra types and n unknown extension modules.
func extendedCarSID(n int) *sidl.SID {
	sid := sidl.CarRentalSID()
	for i := 0; i < n; i++ {
		t := sidl.StructOf(fmt.Sprintf("Extra%d_t", i),
			sidl.Field{Name: "payload", Type: sidl.Basic(sidl.String)},
			sidl.Field{Name: "count", Type: sidl.Basic(sidl.Int64)},
		)
		sid.Types = append(sid.Types, t)
		sid.Ops = append(sid.Ops, sidl.Op{
			Name:   fmt.Sprintf("Extra%d", i),
			Result: t,
			Params: []sidl.Param{{Name: "v", Dir: sidl.In, Type: t}},
		})
		sid.Unknown = append(sid.Unknown, sidl.RawModule{
			Name: fmt.Sprintf("COSM_Ext%d", i),
			Body: fmt.Sprintf("const long Version = %d;", i),
		})
	}
	return sid
}

// BenchmarkFig2_Conformance measures checking an extended SID against
// the base description as the extension grows.
func BenchmarkFig2_Conformance(b *testing.B) {
	b.ReportAllocs()
	base := sidl.CarRentalSID()
	for _, n := range []int{0, 8, 64} {
		b.Run(fmt.Sprintf("extensions=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			ext := extendedCarSID(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ext.ConformsTo(base); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig2_ParseExtended measures a base-level parser processing an
// extended description: the unknown-module skipping of section 4.1.
func BenchmarkFig2_ParseExtended(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{0, 8, 64} {
		b.Run(fmt.Sprintf("extensions=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			text := extendedCarSID(n).IDL()
			b.SetBytes(int64(len(text)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sidl.Parse(text); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// E3 / Fig. 3 — generic client vs. static stub
// ---------------------------------------------------------------------

// BenchmarkFig3_StaticStubCall is the baseline: compiled marshalling,
// no SID, no FSM, over the same transport and server.
func BenchmarkFig3_StaticStubCall(b *testing.B) {
	b.ReportAllocs()
	node, carRef := startRentalNode(b, "bench-fig3-static")
	c, err := stub.Dial(node.Pool(), carRef, "bench")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	req := stub.SelectCarRequest{Model: stub.FIATUno, BookingDate: "1994-06-21", Days: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.SelectCar(ctx, req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3_GenericCall is the same call through the generic
// client: dynamic marshalling plus local FSM tracking.
func BenchmarkFig3_GenericCall(b *testing.B) {
	b.ReportAllocs()
	node, carRef := startRentalNode(b, "bench-fig3-generic")
	gc := genclient.New(node.Pool())
	ctx := context.Background()
	binding, err := gc.Bind(ctx, carRef)
	if err != nil {
		b.Fatal(err)
	}
	sel := xcode.Zero(binding.SID().Type("SelectCar_t"))
	if err := sel.SetField("days", xcode.NewInt(sidl.Basic(sidl.Int32), 3)); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := binding.Invoke(ctx, "SelectCar", sel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3_GenericFirstUse measures the one-time cost the paper
// trades for zero client code: SID transfer, UI generation, first call.
func BenchmarkFig3_GenericFirstUse(b *testing.B) {
	b.ReportAllocs()
	node, carRef := startRentalNode(b, "bench-fig3-firstuse")
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gc := genclient.New(node.Pool())
		binding, err := gc.Bind(ctx, carRef)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := binding.InvokeForm(ctx, "SelectCar", map[string]string{
			"SelectCar.selection.days": "3",
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// E4 / Fig. 4 — browser mediation
// ---------------------------------------------------------------------

func startBrowserNode(b *testing.B, loopName string, entries int) (*cosm.Node, ref.ServiceRef) {
	b.Helper()
	dir := browser.NewDirectory()
	for i := 0; i < entries; i++ {
		sid := sidl.CarRentalSID()
		sid.ServiceName = fmt.Sprintf("Rental%04d", i)
		if err := dir.Register(sid, ref.New(fmt.Sprintf("tcp:10.1.0.%d:7000", i%250), sid.ServiceName)); err != nil {
			b.Fatal(err)
		}
	}
	svc, err := browser.NewService(dir)
	if err != nil {
		b.Fatal(err)
	}
	node := quietNode()
	if err := node.Host(browser.ServiceName, svc); err != nil {
		b.Fatal(err)
	}
	if _, err := node.ListenAndServe("loop:" + loopName); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = node.Close() })
	return node, node.MustRefFor(browser.ServiceName)
}

// BenchmarkFig4_Register measures SID registration (step 1 of Fig. 4)
// over the wire, including SID text transfer and re-parsing.
func BenchmarkFig4_Register(b *testing.B) {
	b.ReportAllocs()
	node, browserRef := startBrowserNode(b, "bench-fig4-reg", 0)
	ctx := context.Background()
	bc, err := browser.DialBrowser(ctx, node.Pool(), browserRef)
	if err != nil {
		b.Fatal(err)
	}
	sid := sidl.CarRentalSID()
	target := ref.New("tcp:10.2.0.1:7000", "CarRentalService")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sid.ServiceName = fmt.Sprintf("Svc%d", i%1000) // bounded directory
		if err := bc.RegisterSID(ctx, sid, target); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4_Search measures keyword browsing (step 2) against
// directories of growing size, over the wire.
func BenchmarkFig4_Search(b *testing.B) {
	b.ReportAllocs()
	for _, size := range []int{16, 256, 1024} {
		b.Run(fmt.Sprintf("entries=%d", size), func(b *testing.B) {
			b.ReportAllocs()
			node, browserRef := startBrowserNode(b, fmt.Sprintf("bench-fig4-search-%d", size), size)
			ctx := context.Background()
			bc, err := browser.DialBrowser(ctx, node.Pool(), browserRef)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				entries, err := bc.Search(ctx, "rental0001")
				if err != nil {
					b.Fatal(err)
				}
				if size > 1 && len(entries) == 0 {
					b.Fatal("no hits")
				}
			}
		})
	}
}

// BenchmarkFig4_BrowseBind measures steps 2-3 together: search, then
// bind using the SID from the entry (no describe round trip).
func BenchmarkFig4_BrowseBind(b *testing.B) {
	b.ReportAllocs()
	node, carRef := startRentalNode(b, "bench-fig4-bind-svc")
	dir := browser.NewDirectory()
	if err := dir.Register(sidl.CarRentalSID(), carRef); err != nil {
		b.Fatal(err)
	}
	bsvc, err := browser.NewService(dir)
	if err != nil {
		b.Fatal(err)
	}
	if err := node.Host(browser.ServiceName, bsvc); err != nil {
		b.Fatal(err)
	}
	browserRef := node.MustRefFor(browser.ServiceName)
	gc := genclient.New(node.Pool())
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		binding, err := gc.BrowseAndBind(ctx, browserRef, "rent")
		if err != nil {
			b.Fatal(err)
		}
		if _, err := binding.InvokeForm(ctx, "SelectCar", map[string]string{
			"SelectCar.selection.days": "1",
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4_Cascade measures traversing a chain of browsers, each
// registered at the previous one, then binding at the end.
func BenchmarkFig4_Cascade(b *testing.B) {
	b.ReportAllocs()
	for _, depth := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			b.ReportAllocs()
			ctx := context.Background()
			_, carRef := startRentalNode(b, fmt.Sprintf("bench-fig4-casc-svc-%d", depth))

			// Build the chain: browser[depth-1] holds the service;
			// browser[i] holds browser[i+1].
			refs := make([]ref.ServiceRef, depth)
			var pool *wire.Pool
			for i := depth - 1; i >= 0; i-- {
				dir := browser.NewDirectory()
				if i == depth-1 {
					if err := dir.Register(sidl.CarRentalSID(), carRef); err != nil {
						b.Fatal(err)
					}
				}
				svc, err := browser.NewService(dir)
				if err != nil {
					b.Fatal(err)
				}
				node := quietNode()
				if err := node.Host(browser.ServiceName, svc); err != nil {
					b.Fatal(err)
				}
				if _, err := node.ListenAndServe(fmt.Sprintf("loop:bench-fig4-casc-%d-%d", depth, i)); err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { _ = node.Close() })
				refs[i] = node.MustRefFor(browser.ServiceName)
				pool = node.Pool()
				if i < depth-1 {
					bc, err := browser.DialBrowser(ctx, pool, refs[i])
					if err != nil {
						b.Fatal(err)
					}
					childSID, err := cosm.Describe(ctx, pool, refs[i+1])
					if err != nil {
						b.Fatal(err)
					}
					childSID.ServiceName = fmt.Sprintf("Browser%d", i+1)
					if err := bc.RegisterSID(ctx, childSID, refs[i+1]); err != nil {
						b.Fatal(err)
					}
				}
			}

			gc := genclient.New(pool)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Walk the cascade from the root to the service.
				cur := refs[0]
				for {
					entries, err := gc.Browse(ctx, cur, "")
					if err != nil {
						b.Fatal(err)
					}
					if len(entries) != 1 {
						b.Fatalf("entries = %d", len(entries))
					}
					if entries[0].SID.ServiceName == "CarRentalService" {
						if _, err := gc.BindEntry(entries[0]); err != nil {
							b.Fatal(err)
						}
						break
					}
					cur = entries[0].Ref
				}
			}
		})
	}
}

// ---------------------------------------------------------------------
// E5 / Fig. 6 — full architecture stack
// ---------------------------------------------------------------------

// BenchmarkFig6_FullStack measures a call that crosses every layer of
// the prototype architecture: name server resolution, binder, SID
// describe, dynamic marshalling, RPC, FSM check, application handler.
func BenchmarkFig6_FullStack(b *testing.B) {
	b.ReportAllocs()
	node, carRef := startRentalNode(b, "bench-fig6-stack")
	nameSvc, err := naming.NewService(naming.NewRegistry())
	if err != nil {
		b.Fatal(err)
	}
	if err := node.Host(naming.ServiceName, nameSvc); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	nc, err := naming.DialNameServer(ctx, node.Pool(), node.MustRefFor(naming.ServiceName))
	if err != nil {
		b.Fatal(err)
	}
	if err := nc.Register(ctx, "rentals/main", carRef); err != nil {
		b.Fatal(err)
	}
	binder := naming.NewBinder(node.Pool(), nc, naming.WithoutBinderCache())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn, err := binder.BindName(ctx, "rentals/main")
		if err != nil {
			b.Fatal(err)
		}
		sel := xcode.Zero(conn.SID().Type("SelectCar_t"))
		if err := sel.SetField("days", xcode.NewInt(sidl.Basic(sidl.Int32), 1)); err != nil {
			b.Fatal(err)
		}
		if _, err := conn.Invoke(ctx, "SelectCar", sel); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6_DynamicMarshal isolates the communication-level codec:
// type-directed marshalling of the paper's SelectCar_t request.
func BenchmarkFig6_DynamicMarshal(b *testing.B) {
	b.ReportAllocs()
	sid := sidl.CarRentalSID()
	sel := xcode.Zero(sid.Type("SelectCar_t"))
	if err := sel.SetField("bookingDate", xcode.NewString(sidl.Basic(sidl.String), "1994-06-21")); err != nil {
		b.Fatal(err)
	}
	var buf []byte
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = xcode.AppendMarshal(buf[:0], sel)
		if _, err := xcode.Unmarshal(sel.Type, buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig6_SIDTransfer measures marshalling and re-parsing the SID
// itself — the communicable-first-class-object cost.
func BenchmarkFig6_SIDTransfer(b *testing.B) {
	b.ReportAllocs()
	sid := sidl.CarRentalSID()
	text, err := sid.MarshalText()
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(text)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var s sidl.SID
		if err := s.UnmarshalText(text); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// E6 / Fig. 7 — automatic user interface generation
// ---------------------------------------------------------------------

// wideSID builds a SID whose single operation takes a record with n
// fields, to sweep form size.
func wideSID(n int) *sidl.SID {
	var fields strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&fields, "        string f%d;\n", i)
	}
	src := fmt.Sprintf(`
module Wide {
    struct Big_t {
%s    };
    interface COSM_Operations {
        void Touch(in Big_t v);
    };
};
`, fields.String())
	sid, err := sidl.Parse(src)
	if err != nil {
		panic(err)
	}
	return sid
}

// BenchmarkFig7_FormGeneration measures generating the operation forms
// from a SID as the interface grows.
func BenchmarkFig7_FormGeneration(b *testing.B) {
	b.ReportAllocs()
	for _, n := range []int{4, 32, 256} {
		b.Run(fmt.Sprintf("fields=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			sid := wideSID(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				forms := uiform.Generate(sid)
				if forms[0].CountWidgets() != n+1 {
					b.Fatal("bad widget count")
				}
			}
		})
	}
}

// BenchmarkFig7_RenderUI measures rendering the full car rental dialog.
func BenchmarkFig7_RenderUI(b *testing.B) {
	b.ReportAllocs()
	sid := sidl.CarRentalSID()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if out := uiform.RenderAll(sid); len(out) == 0 {
			b.Fatal("empty UI")
		}
	}
}

// BenchmarkFig7_LocalInterception measures rejecting a protocol-
// violating invocation at the generic client: it must cost no network
// traffic at all (section 4.2).
func BenchmarkFig7_LocalInterception(b *testing.B) {
	b.ReportAllocs()
	node, carRef := startRentalNode(b, "bench-fig7-intercept")
	gc := genclient.New(node.Pool())
	ctx := context.Background()
	binding, err := gc.Bind(ctx, carRef)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := binding.Invoke(ctx, "Commit"); err == nil {
			b.Fatal("Commit in INIT must be intercepted")
		}
	}
}

// ---------------------------------------------------------------------
// E7 / section 2.2 — time to market
// ---------------------------------------------------------------------

// BenchmarkSec22_TimeToMarket runs the market simulator per regime and
// reports the paper-shape metrics (time to first use, unmet demand) as
// custom benchmark metrics alongside the run time.
func BenchmarkSec22_TimeToMarket(b *testing.B) {
	b.ReportAllocs()
	p := market.DefaultParams()
	for _, regime := range []market.Regime{market.TradingOnly, market.MediationOnly, market.Integrated} {
		b.Run(regime.String(), func(b *testing.B) {
			b.ReportAllocs()
			var last market.Metrics
			for i := 0; i < b.N; i++ {
				m, err := market.Run(p, regime)
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			b.ReportMetric(last.MeanTimeToFirstUse, "ttfu-days")
			b.ReportMetric(float64(last.UnmetDemand), "unmet-uses")
			b.ReportMetric(float64(last.UsesServed), "served-uses")
			b.ReportMetric(last.FirstMoverShare, "first-mover-share")
		})
	}
}

// ---------------------------------------------------------------------
// E8 / section 2.3 — transition costs and crossover
// ---------------------------------------------------------------------

// BenchmarkSec23_TransitionCosts reports the cost split per regime.
func BenchmarkSec23_TransitionCosts(b *testing.B) {
	b.ReportAllocs()
	p := market.DefaultParams()
	for _, regime := range []market.Regime{market.TradingOnly, market.MediationOnly, market.Integrated} {
		b.Run(regime.String(), func(b *testing.B) {
			b.ReportAllocs()
			var last market.Metrics
			for i := 0; i < b.N; i++ {
				m, err := market.Run(p, regime)
				if err != nil {
					b.Fatal(err)
				}
				last = m
			}
			b.ReportMetric(last.ClientDevCost, "clientdev-cost")
			b.ReportMetric(last.OverheadCost, "overhead-cost")
			b.ReportMetric(last.NetUtility, "net-utility")
		})
	}
}

// ---------------------------------------------------------------------
// Ablations (design choices called out in DESIGN.md §5)
// ---------------------------------------------------------------------

// BenchmarkAblation_ConstraintCompile compares cached compiled
// constraints against per-import re-parsing.
func BenchmarkAblation_ConstraintCompile(b *testing.B) {
	b.ReportAllocs()
	for _, cached := range []bool{true, false} {
		name := "cached"
		opts := []trader.Option{}
		if !cached {
			name = "reparse"
			opts = append(opts, trader.WithoutConstraintCache())
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			tr := trader.New("T", newCarRepo(b), opts...)
			fillTrader(b, tr, 256)
			req := trader.ImportRequest{
				Type:       "CarRentalService",
				Constraint: "(ChargePerDay < 60 || ChargePerDay > 120) && ChargeCurrency == USD && CarModel == FIAT_Uno",
			}
			ctx := context.Background()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := tr.Import(ctx, req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblation_OfferIndex compares the type-indexed offer store
// against a linear scan, with offers spread over many types.
func BenchmarkAblation_OfferIndex(b *testing.B) {
	b.ReportAllocs()
	const types, perType = 64, 64
	build := func(b *testing.B, opts ...trader.Option) *trader.Trader {
		repo := typemgr.NewRepo()
		tr := trader.New("T", repo, opts...)
		for t := 0; t < types; t++ {
			sid := sidl.CarRentalSID()
			sid.Trader.TypeOfService = fmt.Sprintf("Rental%02d", t)
			st, err := typemgr.FromSID(sid)
			if err != nil {
				b.Fatal(err)
			}
			// Make each type structurally distinct so conformance checks
			// do not union all types together.
			st.Attrs = append(st.Attrs, typemgr.AttrDef{
				Name: fmt.Sprintf("Marker%02d", t), Type: sidl.Basic(sidl.Bool),
			})
			if err := repo.Define(st); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < perType; i++ {
				props := append(carProps(float64(40+i)), sidl.Property{
					Name: fmt.Sprintf("Marker%02d", t), Value: sidl.BoolLit(true),
				})
				r := ref.New(fmt.Sprintf("tcp:10.3.%d.%d:7000", t, i), "svc")
				if _, err := tr.Export(st.Name, r, props); err != nil {
					b.Fatal(err)
				}
			}
		}
		return tr
	}
	req := trader.ImportRequest{Type: "Rental33", Constraint: "ChargePerDay < 60"}
	ctx := context.Background()
	for _, indexed := range []bool{true, false} {
		name := "indexed"
		opts := []trader.Option{}
		if !indexed {
			name = "linear"
			opts = append(opts, trader.WithoutOfferIndex())
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			tr := build(b, opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				offers, err := tr.Import(ctx, req)
				if err != nil {
					b.Fatal(err)
				}
				if len(offers) == 0 {
					b.Fatal("no offers")
				}
			}
		})
	}
}

// BenchmarkAblation_SIDCache compares the binder with and without its
// reference/SID cache: the cache removes both the name-server round
// trip and the SID transfer from repeat bindings.
func BenchmarkAblation_SIDCache(b *testing.B) {
	b.ReportAllocs()
	node, carRef := startRentalNode(b, "bench-abl-sidcache")
	nameSvc, err := naming.NewService(naming.NewRegistry())
	if err != nil {
		b.Fatal(err)
	}
	if err := node.Host(naming.ServiceName, nameSvc); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	nc, err := naming.DialNameServer(ctx, node.Pool(), node.MustRefFor(naming.ServiceName))
	if err != nil {
		b.Fatal(err)
	}
	if err := nc.Register(ctx, "rentals/main", carRef); err != nil {
		b.Fatal(err)
	}
	for _, cached := range []bool{true, false} {
		name := "cached"
		opts := []naming.BinderOption{}
		if !cached {
			name = "uncached"
			opts = append(opts, naming.WithoutBinderCache())
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			binder := naming.NewBinder(node.Pool(), nc, opts...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := binder.BindName(ctx, "rentals/main"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkExt_TwoPhaseCommit measures the activity-manager extension
// (Fig. 6 "Activity Management" / "Transactional RPC"): begin, enlist n
// participants, one reservation each, two-phase commit.
func BenchmarkExt_TwoPhaseCommit(b *testing.B) {
	b.ReportAllocs()
	for _, participants := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("participants=%d", participants), func(b *testing.B) {
			b.ReportAllocs()
			node := quietNode()
			if _, err := node.ListenAndServe(fmt.Sprintf("loop:bench-2pc-%d", participants)); err != nil {
				b.Fatal(err)
			}
			defer node.Close()
			refs := make([]ref.ServiceRef, participants)
			for i := range refs {
				r, err := hostBenchInventory(node, fmt.Sprintf("Inv%d", i))
				if err != nil {
					b.Fatal(err)
				}
				refs[i] = r
			}
			m := activity.NewManager(node.Pool())
			ctx := context.Background()
			strT := sidl.Basic(sidl.String)
			int32T := sidl.Basic(sidl.Int32)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				id := m.Begin()
				for _, r := range refs {
					if err := m.Join(id, r); err != nil {
						b.Fatal(err)
					}
					conn, err := cosm.Bind(ctx, node.Pool(), r)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := conn.Invoke(ctx, "Reserve",
						xcode.NewString(strT, id), xcode.NewInt(int32T, 1)); err != nil {
						b.Fatal(err)
					}
				}
				committed, err := m.Commit(ctx, id)
				if err != nil || !committed {
					b.Fatalf("commit = %v, %v", committed, err)
				}
			}
		})
	}
}

// benchInventory is a minimal always-yes transactional resource.
type benchInventory struct {
	mu      sync.Mutex
	pending map[string]int
	total   int
}

func (inv *benchInventory) Prepare(string) error { return nil }
func (inv *benchInventory) Commit(id string) error {
	inv.mu.Lock()
	inv.total += inv.pending[id]
	delete(inv.pending, id)
	inv.mu.Unlock()
	return nil
}
func (inv *benchInventory) Abort(id string) error {
	inv.mu.Lock()
	delete(inv.pending, id)
	inv.mu.Unlock()
	return nil
}

func hostBenchInventory(node *cosm.Node, name string) (ref.ServiceRef, error) {
	base, err := sidl.Parse(`
module Inv {
    interface COSM_Operations {
        void Reserve(in string activity, in long units);
    };
};
`)
	if err != nil {
		return ref.ServiceRef{}, err
	}
	base.ServiceName = name
	svc, err := cosm.NewService(activity.ExtendSID(base))
	if err != nil {
		return ref.ServiceRef{}, err
	}
	inv := &benchInventory{pending: map[string]int{}}
	svc.MustHandle("Reserve", func(call *cosm.Call) error {
		id, err := call.Arg("activity")
		if err != nil {
			return err
		}
		units, err := call.Arg("units")
		if err != nil {
			return err
		}
		inv.mu.Lock()
		inv.pending[id.Str] += int(units.Int)
		inv.mu.Unlock()
		return nil
	})
	if err := activity.HandleParticipant(svc, inv); err != nil {
		return ref.ServiceRef{}, err
	}
	if err := node.Host(name, svc); err != nil {
		return ref.ServiceRef{}, err
	}
	return node.RefFor(name)
}

// ---------------------------------------------------------------------
// E9 / overload — admission control and load shedding
// ---------------------------------------------------------------------

// BenchmarkOverload_Saturation drives a server whose true service
// capacity is one request per `work` interval (a single internal slot)
// with far more concurrent callers than it can serve — beyond
// saturation. The unbounded variant queues everything inside the
// server, so the latency of served requests grows with the backlog;
// with admission control the excess is shed immediately with
// StatusOverloaded and the p99 of what *is* served stays bounded by
// MaxInFlight + MaxQueue. Reported metrics: p99 of served requests,
// served throughput, and the shed / client-timeout fractions.
func BenchmarkOverload_Saturation(b *testing.B) {
	b.ReportAllocs()
	const (
		workers = 32
		work    = 2 * time.Millisecond
	)
	cases := []struct {
		name   string
		policy wire.AdmissionPolicy
	}{
		{"unbounded", wire.AdmissionPolicy{}},
		{"shedding", wire.AdmissionPolicy{MaxInFlight: 4, MaxQueue: 4, QueueWait: 4 * work}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			// One service slot: the bottleneck is the resource behind the
			// handler, not goroutine scheduling.
			slot := make(chan struct{}, 1)
			h := wire.HandlerFunc(func(ctx context.Context, _ string, _ *wire.Request) *wire.Response {
				select {
				case slot <- struct{}{}:
				case <-ctx.Done():
					return &wire.Response{Status: wire.StatusAppError, ErrMsg: "deadline before service"}
				}
				defer func() { <-slot }()
				select {
				case <-time.After(work):
					return &wire.Response{Status: wire.StatusOK}
				case <-ctx.Done():
					return &wire.Response{Status: wire.StatusAppError, ErrMsg: "deadline during service"}
				}
			})
			s := wire.NewServer(wire.WithServerLog(func(string, ...any) {}), wire.WithAdmission(tc.policy))
			if err := s.Register("svc", h); err != nil {
				b.Fatal(err)
			}
			endpoint, err := s.ListenAndServe("loop:bench-overload-" + tc.name)
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			req := &wire.Request{Service: "svc", Op: "Work"}

			// One connection per worker: independent clients, so a shed
			// storm on one connection cannot queue behind another's reads.
			clients := make([]*wire.Client, workers)
			for w := range clients {
				c, err := wire.Dial(endpoint)
				if err != nil {
					b.Fatal(err)
				}
				defer c.Close()
				clients[w] = c
			}

			var (
				mu       sync.Mutex
				served   []time.Duration
				sheds    int
				timeouts int
			)
			calls := make(chan struct{})
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(c *wire.Client) {
					defer wg.Done()
					var lat []time.Duration
					shed, timedOut := 0, 0
					for range calls {
						ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
						t0 := time.Now()
						_, err := c.Call(ctx, req)
						d := time.Since(t0)
						cancel()
						var remote *wire.RemoteError
						switch {
						case err == nil:
							lat = append(lat, d)
						case errors.As(err, &remote) && remote.Status == wire.StatusOverloaded:
							shed++
						default:
							timedOut++
						}
					}
					mu.Lock()
					served = append(served, lat...)
					sheds += shed
					timeouts += timedOut
					mu.Unlock()
				}(clients[w])
			}
			b.ResetTimer()
			t0 := time.Now()
			for i := 0; i < b.N; i++ {
				calls <- struct{}{}
			}
			close(calls)
			wg.Wait()
			elapsed := time.Since(t0)
			b.StopTimer()

			if len(served) > 0 {
				sort.Slice(served, func(i, j int) bool { return served[i] < served[j] })
				idx := len(served) * 99 / 100
				if idx >= len(served) {
					idx = len(served) - 1
				}
				b.ReportMetric(float64(served[idx])/float64(time.Millisecond), "p99-ms")
				b.ReportMetric(float64(len(served))/elapsed.Seconds(), "served-per-sec")
			}
			b.ReportMetric(float64(sheds)/float64(b.N), "shed-frac")
			b.ReportMetric(float64(timeouts)/float64(b.N), "timeout-frac")
		})
	}
}

// BenchmarkAblation_Transport compares the loopback and TCP transports
// under the same dynamic invocation.
func BenchmarkAblation_Transport(b *testing.B) {
	b.ReportAllocs()
	for _, endpoint := range []string{"loop:bench-abl-transport", "tcp:127.0.0.1:0"} {
		name := strings.SplitN(endpoint, ":", 2)[0]
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			svc, _, err := carrental.New()
			if err != nil {
				b.Fatal(err)
			}
			node := quietNode()
			if err := node.Host("CarRentalService", svc); err != nil {
				b.Fatal(err)
			}
			if _, err := node.ListenAndServe(endpoint); err != nil {
				b.Fatal(err)
			}
			defer node.Close()
			ctx := context.Background()
			conn, err := cosm.Bind(ctx, node.Pool(), node.MustRefFor("CarRentalService"))
			if err != nil {
				b.Fatal(err)
			}
			sel := xcode.Zero(conn.SID().Type("SelectCar_t"))
			if err := sel.SetField("days", xcode.NewInt(sidl.Basic(sidl.Int32), 1)); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := conn.Invoke(ctx, "SelectCar", sel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkObsOverhead measures what the observability layer costs on
// the hot RPC path. "off" runs the wire stack with no registry — every
// instrument is nil and records nothing — and is the acceptance bar:
// it must stay within ~5% of a build with no obs calls at all. "on"
// adds the full client+server metric families; "on+trace" additionally
// propagates a request trace across the wire.
func BenchmarkObsOverhead(b *testing.B) {
	b.ReportAllocs()
	run := func(b *testing.B, reg *obs.Registry, traced bool) {
		echo := wire.HandlerFunc(func(_ context.Context, _ string, req *wire.Request) *wire.Response {
			return &wire.Response{Status: wire.StatusOK, Body: req.Body}
		})
		opts := []wire.ServerOption{wire.WithServerLog(func(string, ...any) {})}
		if reg != nil {
			opts = append(opts, wire.WithServerMetrics(wire.NewServerMetrics(reg)))
		}
		s := wire.NewServer(opts...)
		if err := s.Register("echo", echo); err != nil {
			b.Fatal(err)
		}
		bound, err := s.ListenAndServe("loop:bench-obs")
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()
		pool := wire.NewPool(wire.WithPoolMetrics(wire.NewClientMetrics(reg)))
		defer pool.Close()

		ctx := context.Background()
		if traced {
			ctx = obs.WithTrace(ctx, obs.NewTrace())
		}
		req := &wire.Request{Service: "echo", Op: "Ping", Body: []byte("overhead")}
		// Warm the connection so dialing is not part of the measurement.
		if _, err := pool.Call(ctx, bound, req); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := pool.Call(ctx, bound, req); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) {
		b.ReportAllocs()
		run(b, nil, false)
	})
	b.Run("on", func(b *testing.B) {
		b.ReportAllocs()
		run(b, obs.NewRegistry(), false)
	})
	b.Run("on+trace", func(b *testing.B) {
		b.ReportAllocs()
		run(b, obs.NewRegistry(), true)
	})
}

// ---------------------------------------------------------------------
// E9 — durable market state (write-ahead journal + crash recovery)
// ---------------------------------------------------------------------

// BenchmarkJournalAppend measures the WAL append hot path — the cost
// every journalled export/withdraw pays on top of the in-memory
// mutation — per fsync policy. The payload is a realistic one-offer
// export record.
func BenchmarkJournalAppend(b *testing.B) {
	tr := trader.New("bench", newCarRepo(b))
	if _, err := tr.Export("CarRentalService",
		ref.New("tcp:10.0.0.1:7000", "CarRentalService"), carProps(49)); err != nil {
		b.Fatal(err)
	}
	offers, err := tr.ImportWith(context.Background(), "CarRentalService")
	if err != nil || len(offers) != 1 {
		b.Fatalf("import = %v, %v", offers, err)
	}
	payload, err := json.Marshal(struct {
		Op     string               `json:"op"`
		Offers []trader.OfferRecord `json:"offers"`
	}{"export", []trader.OfferRecord{offers[0].Record()}})
	if err != nil {
		b.Fatal(err)
	}

	for _, policy := range []journal.FsyncPolicy{journal.FsyncNever, journal.FsyncInterval, journal.FsyncAlways} {
		b.Run("fsync="+policy.String(), func(b *testing.B) {
			j, err := journal.Open(b.TempDir(), journal.Options{Fsync: policy})
			if err != nil {
				b.Fatal(err)
			}
			defer j.Close()
			if err := j.Start(func() ([]byte, error) { return nil, nil }); err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := j.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecovery_10kOffers measures crash recovery: rebuilding a
// 10k-offer trader (store, per-type snapshots, attribute indexes, offer
// ID counter) from its journal — the daemon's boot-time cost after a
// kill -9. The journal is pure records (worst case: no snapshot to
// shortcut replay).
func BenchmarkRecovery_10kOffers(b *testing.B) {
	const stored = 10_000
	dir := b.TempDir()
	j, err := journal.Open(dir, journal.Options{Fsync: journal.FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	seed := trader.New("bench", newCarRepo(b))
	if err := j.Start(seed.JournalSnapshot); err != nil {
		b.Fatal(err)
	}
	seed.SetJournal(j)
	fillTrader(b, seed, stored)
	if err := j.Close(); err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := trader.New("bench", newCarRepo(b))
		j, err := journal.Open(dir, journal.Options{Fsync: journal.FsyncNever})
		if err != nil {
			b.Fatal(err)
		}
		if snap, ok := j.Snapshot(); ok {
			if err := tr.RestoreSnapshot(snap); err != nil {
				b.Fatal(err)
			}
		}
		if err := j.Replay(tr.ReplayRecord); err != nil {
			b.Fatal(err)
		}
		if err := j.Close(); err != nil {
			b.Fatal(err)
		}
		if n := tr.OfferCount(); n != stored {
			b.Fatalf("recovered %d offers, want %d", n, stored)
		}
	}
}

// BenchmarkReplCatchup_10kOffers measures a fresh follower replicating
// a leader's full 10k-offer journal through the pull protocol — the
// catch-up a new read replica pays before it can serve.
func BenchmarkReplCatchup_10kOffers(b *testing.B) {
	const stored = 10_000
	dir := b.TempDir()
	j, err := journal.Open(dir, journal.Options{Fsync: journal.FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	leader := trader.New("HA", newCarRepo(b))
	if err := j.Start(leader.JournalSnapshot); err != nil {
		b.Fatal(err)
	}
	leader.SetJournal(j)
	fillTrader(b, leader, stored)
	defer j.Close()

	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		follower := trader.New("HA", newCarRepo(b))
		follower.SetFollower("cosm://leader")
		for {
			batch, err := leader.PullBatch(ctx, "bench", follower.Epoch(), follower.ReplApplied(), 512, 0)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := follower.ApplyBatch(batch); err != nil {
				b.Fatal(err)
			}
			if follower.ReplApplied() >= batch.LastSeq {
				break
			}
		}
		if n := follower.OfferCount(); n != stored {
			b.Fatalf("replicated %d offers, want %d", n, stored)
		}
	}
}

// BenchmarkReplicaImport_10kOffers is BenchmarkImport_10kOffers served
// by a follower read replica: the local matching path over replicated
// state, proving reads cost the same on a replica as on the leader.
func BenchmarkReplicaImport_10kOffers(b *testing.B) {
	const stored = 10_000
	dir := b.TempDir()
	j, err := journal.Open(dir, journal.Options{Fsync: journal.FsyncNever})
	if err != nil {
		b.Fatal(err)
	}
	leader := trader.New("HA", newCarRepo(b))
	if err := j.Start(leader.JournalSnapshot); err != nil {
		b.Fatal(err)
	}
	leader.SetJournal(j)
	fillTrader(b, leader, stored)
	defer j.Close()

	ctx := context.Background()
	follower := trader.New("HA", newCarRepo(b))
	follower.SetFollower("cosm://leader")
	for {
		batch, err := leader.PullBatch(ctx, "bench", follower.Epoch(), follower.ReplApplied(), 2048, 0)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := follower.ApplyBatch(batch); err != nil {
			b.Fatal(err)
		}
		if follower.ReplApplied() >= batch.LastSeq {
			break
		}
	}

	req := trader.ImportRequest{
		Type:       "CarRentalService",
		Constraint: "ChargePerDay < 45",
		Policy:     "min:ChargePerDay",
		Max:        5,
	}
	if warm, err := follower.Import(ctx, req); err != nil || len(warm) == 0 {
		b.Fatalf("warmup import = %v, %v", warm, err)
	}
	factor := (64 + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0)
	b.SetParallelism(factor)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			res, err := follower.Import(ctx, req)
			if err != nil {
				b.Fatal(err)
			}
			if len(res) == 0 {
				b.Fatal("no offers")
			}
		}
	})
}

// ---------------------------------------------------------------------
// E11 — flight recorder (timed spans + cluster event timeline)
// ---------------------------------------------------------------------

// BenchmarkSpanOverhead measures what the span instrumentation costs
// on the request path. "nil" is the acceptance bar: a daemon started
// with -trace-buffer 0 leaves the recorder nil, and the guarded
// Record sites compiled into wire must cost ~nothing — zero
// allocations. "enabled" is the sharded ring append paid per request
// when tracing is on.
func BenchmarkSpanOverhead(b *testing.B) {
	tr := obs.NewTrace()
	span := obs.Span{Trace: tr.ID, ID: tr.Span, Parent: tr.Parent,
		Op: "svc/Op", Peer: "loop:bench", Kind: obs.SpanServer,
		Status: "ok", Start: time.Now(), Duration: time.Millisecond}
	b.Run("nil", func(b *testing.B) {
		var rec *obs.SpanRecorder
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rec.Enabled() {
				rec.Record(span)
			}
		}
	})
	b.Run("enabled", func(b *testing.B) {
		rec := obs.NewSpanRecorder(4096)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if rec.Enabled() {
				rec.Record(span)
			}
		}
	})
}

// BenchmarkEventLogAppend measures the cluster timeline append paid at
// every recorded state transition (vote, promote, breaker trip, ...).
// These are rare events — correctness matters more than speed — but
// the append must stay cheap enough to call from election hot paths.
func BenchmarkEventLogAppend(b *testing.B) {
	b.Run("nil", func(b *testing.B) {
		var ev *obs.EventLog
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev.Record("vote_granted", "candidate", "n1", "epoch", "7")
		}
	})
	b.Run("enabled", func(b *testing.B) {
		ev := obs.NewEventLog("bench", 1024)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ev.Record("vote_granted", "candidate", "n1", "epoch", "7")
		}
	})
}

// ---------------------------------------------------------------------
// E12 — federated trader mesh (link registry + summary-routed scatter)
// ---------------------------------------------------------------------

// buildMesh stands up a fully linked in-process mesh of n traders, each
// exporting `offers` offers of its own distinct service type — the
// sharpest case for summary routing, since exactly one peer can answer
// any given import. Import caching is off so repeat imports measure the
// matching path, not the cache.
func buildMesh(b *testing.B, n, offers int) []*trader.Trader {
	b.Helper()
	meshType := func(i int) string { return fmt.Sprintf("MeshService%02d", i) }
	traders := make([]*trader.Trader, n)
	for i := range traders {
		repo := typemgr.NewRepo()
		st := typemgr.ServiceType{
			Name:  meshType(i),
			Attrs: []typemgr.AttrDef{{Name: "Price", Type: sidl.Basic(sidl.Float64)}},
		}
		if err := repo.Define(&st); err != nil {
			b.Fatal(err)
		}
		traders[i] = trader.New(fmt.Sprintf("mesh-%02d", i), repo, trader.WithImportCacheTTL(0))
		for k := 0; k < offers; k++ {
			r := ref.New(fmt.Sprintf("tcp:10.42.%d.%d:7000", i, k+1), meshType(i))
			props := []sidl.Property{{Name: "Price", Value: sidl.FloatLit(float64(10 + (i+k)%90))}}
			if _, err := traders[i].Export(meshType(i), r, props); err != nil {
				b.Fatal(err)
			}
		}
	}
	for i, a := range traders {
		for j, p := range traders {
			if i == j {
				continue
			}
			if err := a.AddLink(fmt.Sprintf("mesh-%02d", j), p); err != nil {
				b.Fatal(err)
			}
		}
	}
	return traders
}

// BenchmarkMesh_50Traders measures a federated import across a 50-node
// full mesh in three regimes. "local" is the baseline: the importing
// trader matches its own store. "full-scatter" is the pre-summary
// behaviour: with no routing knowledge every one-hop import fans out to
// all 49 peers. "summary-routed" runs one offer-summary gossip round
// first, after which the scatter planner consults only peers whose
// summaries cover the requested type — the acceptance bar is <= 3 peers
// per import (here it is exactly 1) with a latency within ~2x local.
// Each variant reports peers/op (from FedStats deltas) and its own
// measured p99.
func BenchmarkMesh_50Traders(b *testing.B) {
	const (
		meshSize = 50
		offers   = 5
	)
	meshType := func(i int) string { return fmt.Sprintf("MeshService%02d", i) }
	ctx := context.Background()

	runImports := func(b *testing.B, traders []*trader.Trader, hops int, maxPeersPerOp float64) {
		b.Helper()
		b.ReportAllocs()
		importer := traders[0]
		before := importer.FedStats()
		lat := make([]time.Duration, 0, b.N)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			target := 0
			if hops > 0 {
				target = 1 + i%(meshSize-1)
			}
			t0 := time.Now()
			got, err := importer.ImportWith(ctx, meshType(target), trader.Hops(hops))
			lat = append(lat, time.Since(t0))
			if err != nil {
				b.Fatal(err)
			}
			if len(got) != offers {
				b.Fatalf("import %d: got %d offers, want %d", i, len(got), offers)
			}
		}
		b.StopTimer()
		if hops > 0 {
			stats := importer.FedStats()
			peersPerOp := float64(stats.PeersAsked-before.PeersAsked) / float64(b.N)
			b.ReportMetric(peersPerOp, "peers/op")
			if maxPeersPerOp > 0 && peersPerOp > maxPeersPerOp {
				b.Fatalf("summary-routed imports consulted %.1f peers/op, want <= %.0f", peersPerOp, maxPeersPerOp)
			}
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		idx := len(lat) * 99 / 100
		if idx >= len(lat) {
			idx = len(lat) - 1
		}
		b.ReportMetric(float64(lat[idx])/float64(time.Microsecond), "p99-us")
	}

	b.Run("local", func(b *testing.B) {
		traders := buildMesh(b, meshSize, offers)
		runImports(b, traders, 0, 0)
	})
	b.Run("full-scatter", func(b *testing.B) {
		traders := buildMesh(b, meshSize, offers)
		runImports(b, traders, 1, 0)
	})
	b.Run("summary-routed", func(b *testing.B) {
		traders := buildMesh(b, meshSize, offers)
		for _, t := range traders {
			if _, failed := t.GossipRound(ctx, time.Second); failed > 0 {
				b.Fatalf("gossip round reported %d failed pushes", failed)
			}
		}
		runImports(b, traders, 1, 3)
	})
}

// ---------------------------------------------------------------------
// E13 — semantic matchmaking (conformance-aware graded imports)
// ---------------------------------------------------------------------

// conformantLevels is the depth of the benchmark hierarchy: a five-level
// chain L0 <- L1 <- L2 <- L3 <- L4, each level adding one attribute on
// top of the shared Price.
const conformantLevels = 5

func conformantLevelName(i int) string { return fmt.Sprintf("L%d", i) }

// conformantHierRepo defines the chain; every type carries Price plus
// one extra attribute per inherited level, so each is a conforming
// subtype of all its ancestors.
func conformantHierRepo(b *testing.B) *typemgr.Repo {
	b.Helper()
	repo := typemgr.NewRepo()
	for i := 0; i < conformantLevels; i++ {
		st := &typemgr.ServiceType{
			Name:  conformantLevelName(i),
			Attrs: []typemgr.AttrDef{{Name: "Price", Type: sidl.Basic(sidl.Float64)}},
		}
		if i > 0 {
			st.Super = conformantLevelName(i - 1)
		}
		for k := 1; k <= i; k++ {
			st.Attrs = append(st.Attrs, typemgr.AttrDef{
				Name: fmt.Sprintf("A%d", k), Type: sidl.Basic(sidl.Int64),
			})
		}
		if err := repo.Define(st); err != nil {
			b.Fatal(err)
		}
	}
	return repo
}

// fillConformant spreads n offers evenly over the hierarchy's levels
// with the same ~90-value price spread fillTrader uses.
func fillConformant(b *testing.B, tr *trader.Trader, n int) {
	b.Helper()
	for i := 0; i < n; i++ {
		level := i % conformantLevels
		props := []sidl.Property{{Name: "Price", Value: sidl.FloatLit(float64(10 + i%90))}}
		for k := 1; k <= level; k++ {
			props = append(props, sidl.Property{Name: fmt.Sprintf("A%d", k), Value: sidl.IntLit(int64(k))})
		}
		r := ref.New(fmt.Sprintf("tcp:10.7.%d.%d:7000", i/250, i%250), conformantLevelName(level))
		if _, err := tr.Export(conformantLevelName(level), r, props); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkImport_Conformant_10kOffers measures the graded matching hot
// path at market scale: 10k offers spread over a five-level type
// hierarchy, 64 concurrent importers asking for the root type, a ~4%
// selective range constraint, score-ordered results. "exact" is the
// baseline: the same 10k offers under a single flat type, i.e. the
// one-bucket indexed path of BenchmarkImport_10kOffers. "conformant"
// resolves the root's subtype closure and fans the same import out over
// all five per-type index snapshots — the acceptance bar is ~2x the
// flat baseline. "linear" is the ablation oracle: the same conformant
// import over the unindexed store, which the indexed path must beat by
// >= 5x.
func BenchmarkImport_Conformant_10kOffers(b *testing.B) {
	const stored = 10_000
	run := func(b *testing.B, tr *trader.Trader, fill func(*testing.B, *trader.Trader, int)) {
		b.Helper()
		fill(b, tr, stored)
		req := trader.NewImport("L0",
			trader.Conformant(),
			trader.Where("Price < 14"), // prices 10..13: ~4% of the spread
			trader.OrderBy("score"),
			trader.Limit(5))
		ctx := context.Background()
		if warm, err := tr.ImportGraded(ctx, req); err != nil || len(warm) == 0 {
			b.Fatalf("warmup import = %v, %v", warm, err)
		}
		factor := (64 + runtime.GOMAXPROCS(0) - 1) / runtime.GOMAXPROCS(0)
		b.SetParallelism(factor)
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				res, err := tr.ImportGraded(ctx, req)
				if err != nil {
					b.Fatal(err)
				}
				if len(res) == 0 {
					b.Fatal("no matches")
				}
			}
		})
	}
	// flatFill puts every offer under the root type: the closure is a
	// single bucket, so this is the exact-type indexed path.
	flatFill := func(b *testing.B, tr *trader.Trader, n int) {
		b.Helper()
		for i := 0; i < n; i++ {
			props := []sidl.Property{{Name: "Price", Value: sidl.FloatLit(float64(10 + i%90))}}
			r := ref.New(fmt.Sprintf("tcp:10.8.%d.%d:7000", i/250, i%250), "L0")
			if _, err := tr.Export("L0", r, props); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("exact", func(b *testing.B) {
		run(b, trader.New("T", conformantHierRepo(b), trader.WithImportCacheTTL(0)), flatFill)
	})
	b.Run("conformant", func(b *testing.B) {
		run(b, trader.New("T", conformantHierRepo(b), trader.WithImportCacheTTL(0)), fillConformant)
	})
	b.Run("linear", func(b *testing.B) {
		run(b, trader.New("T", conformantHierRepo(b), trader.WithoutOfferIndex(), trader.WithImportCacheTTL(0)), fillConformant)
	})
}

// BenchmarkMesh_GossipRound measures one summary-exchange round: the
// importing trader pushing its digest to (and pulling digests from) all
// 49 mesh peers. This is the background cost that buys the scatter
// narrowing above.
func BenchmarkMesh_GossipRound(b *testing.B) {
	b.ReportAllocs()
	traders := buildMesh(b, 50, 5)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if pushed, failed := traders[0].GossipRound(ctx, time.Second); failed > 0 || pushed == 0 {
			b.Fatalf("gossip round: pushed=%d failed=%d", pushed, failed)
		}
	}
}
