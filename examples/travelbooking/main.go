// Atomic multi-provider booking through the COSM activity manager — the
// "Transaction / Activity Management" functions of the Fig. 6
// architecture that the 1994 prototype left unimplemented.
//
// A travel agency books a flight and a hotel room as one unit of work:
// either both reservations commit or neither does. Both providers are
// ordinary COSM services whose SIDs are *extended* (section 3.1 record
// extension) with the transactional participant operations; base-level
// clients can keep using them and never see the extension.
//
//	go run ./examples/travelbooking
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"

	"cosm/internal/activity"
	"cosm/internal/cosm"
	"cosm/internal/ref"
	"cosm/internal/sidl"
	"cosm/internal/xcode"
)

const bookableIDL = `
// Reserves units of inventory, transactionally.
module Bookable {
    interface COSM_Operations {
        // Add units to the activity's pending reservation.
        void Reserve(in string activity, in long units);
        // Report remaining free units.
        long Free();
    };
};
`

// inventory is a transactional resource: free units plus activity-keyed
// pending reservations.
type inventory struct {
	name string

	mu      sync.Mutex
	free    int
	pending map[string]int
}

func (inv *inventory) Reserve(id string, units int) {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	inv.pending[id] += units
}

func (inv *inventory) Prepare(id string) error {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	if inv.pending[id] > inv.free {
		return errors.New(inv.name + ": not enough capacity")
	}
	return nil
}

func (inv *inventory) Commit(id string) error {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	inv.free -= inv.pending[id]
	delete(inv.pending, id)
	return nil
}

func (inv *inventory) Abort(id string) error {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	delete(inv.pending, id)
	return nil
}

func (inv *inventory) Free() int {
	inv.mu.Lock()
	defer inv.mu.Unlock()
	return inv.free
}

// hostBookable publishes one transactional inventory service.
func hostBookable(node *cosm.Node, name string, free int) (*inventory, ref.ServiceRef, error) {
	base, err := sidl.Parse(bookableIDL)
	if err != nil {
		return nil, ref.ServiceRef{}, err
	}
	base.ServiceName = name
	sid := activity.ExtendSID(base)
	svc, err := cosm.NewService(sid)
	if err != nil {
		return nil, ref.ServiceRef{}, err
	}
	inv := &inventory{name: name, free: free, pending: map[string]int{}}
	int32T := sidl.Basic(sidl.Int32)
	svc.MustHandle("Reserve", func(call *cosm.Call) error {
		id, err := call.Arg("activity")
		if err != nil {
			return err
		}
		units, err := call.Arg("units")
		if err != nil {
			return err
		}
		inv.Reserve(id.Str, int(units.Int))
		return nil
	})
	svc.MustHandle("Free", func(call *cosm.Call) error {
		call.Result = xcode.NewInt(int32T, int64(inv.Free()))
		return nil
	})
	if err := activity.HandleParticipant(svc, inv); err != nil {
		return nil, ref.ServiceRef{}, err
	}
	if err := node.Host(name, svc); err != nil {
		return nil, ref.ServiceRef{}, err
	}
	return inv, node.MustRefFor(name), nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	node := cosm.NewNode()
	if _, err := node.ListenAndServe("tcp:127.0.0.1:0"); err != nil {
		return err
	}
	defer node.Close()

	flights, flightRef, err := hostBookable(node, "AlsterAir", 6)
	if err != nil {
		return err
	}
	hotels, hotelRef, err := hostBookable(node, "ElbeHotel", 2)
	if err != nil {
		return err
	}
	fmt.Printf("== AlsterAir: %d seats, ElbeHotel: %d rooms\n", flights.Free(), hotels.Free())

	// The activity manager is itself a COSM service.
	manager := activity.NewManager(node.Pool())
	msvc, err := activity.NewService(manager)
	if err != nil {
		return err
	}
	if err := node.Host(activity.ServiceName, msvc); err != nil {
		return err
	}
	am, err := activity.DialManager(ctx, node.Pool(), node.MustRefFor(activity.ServiceName))
	if err != nil {
		return err
	}

	reserve := func(id string, r ref.ServiceRef, units int) error {
		conn, err := cosm.Bind(ctx, node.Pool(), r)
		if err != nil {
			return err
		}
		_, err = conn.Invoke(ctx, "Reserve",
			xcode.NewString(sidl.Basic(sidl.String), id),
			xcode.NewInt(sidl.Basic(sidl.Int32), int64(units)))
		return err
	}

	// --- Trip 1: 2 seats + 2 rooms. Both providers can satisfy it.
	trip1, err := am.Begin(ctx)
	if err != nil {
		return err
	}
	for _, r := range []ref.ServiceRef{flightRef, hotelRef} {
		if err := am.Join(ctx, trip1, r); err != nil {
			return err
		}
	}
	if err := reserve(trip1, flightRef, 2); err != nil {
		return err
	}
	if err := reserve(trip1, hotelRef, 2); err != nil {
		return err
	}
	committed, err := am.Commit(ctx, trip1)
	if err != nil {
		return err
	}
	fmt.Printf("\n== trip 1 (2 seats + 2 rooms): committed=%v\n", committed)
	fmt.Printf("   AlsterAir free=%d, ElbeHotel free=%d\n", flights.Free(), hotels.Free())

	// --- Trip 2: 2 seats + 2 rooms again — the hotel is now full, so
	// the whole activity aborts and the flight seats are NOT taken.
	trip2, err := am.Begin(ctx)
	if err != nil {
		return err
	}
	for _, r := range []ref.ServiceRef{flightRef, hotelRef} {
		if err := am.Join(ctx, trip2, r); err != nil {
			return err
		}
	}
	if err := reserve(trip2, flightRef, 2); err != nil {
		return err
	}
	if err := reserve(trip2, hotelRef, 2); err != nil {
		return err
	}
	committed, err = am.Commit(ctx, trip2)
	if err != nil {
		return err
	}
	status, err := am.Status(ctx, trip2)
	if err != nil {
		return err
	}
	fmt.Printf("\n== trip 2 (hotel oversubscribed): committed=%v, status=%s\n", committed, status)
	fmt.Printf("   AlsterAir free=%d (unchanged — atomicity held), ElbeHotel free=%d\n",
		flights.Free(), hotels.Free())

	// --- The extension is invisible to base clients: a generic client
	// bound with the *base* description still lists only Reserve/Free.
	baseSID, err := sidl.Parse(bookableIDL)
	if err != nil {
		return err
	}
	baseSID.ServiceName = "AlsterAir"
	servedSID, err := cosm.Describe(ctx, node.Pool(), flightRef)
	if err != nil {
		return err
	}
	if err := servedSID.ConformsTo(baseSID); err != nil {
		return err
	}
	fmt.Printf("\n== served SID has %d ops and still conforms to the 2-op base description\n",
		len(servedSID.Ops))
	return nil
}
