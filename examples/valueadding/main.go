// Value-adding services, the section 2.3 scenario: "if there is a
// demand for a graphics image server in format X, but a suitable image
// server only supplies format Y, it may be profitable to provide a
// value-adding service by converting Y to X."
//
// An image archive serves images in format Y. A converter provider
// discovers it through the browser — with a generic binding, paying no
// client adaptation cost — and registers a new innovative service that
// serves format X by converting on the fly. Its SID extends the
// archive's interface shape, and clients reach the original archive
// through a first-class service reference in the converter's SID-
// described API (a binding cascade, Fig. 4).
//
//	go run ./examples/valueadding
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"cosm/internal/browser"
	"cosm/internal/cosm"
	"cosm/internal/genclient"
	"cosm/internal/sidl"
	"cosm/internal/wire"
	"cosm/internal/xcode"
)

const archiveIDL = `
// Archive of raster images, served in format Y.
module ImageArchiveY {
    struct Image_t {
        string name;
        string format;
        string data;
    };
    typedef sequence<string> Names_t;
    interface COSM_Operations {
        // List the archived image names.
        Names_t ListImages();
        // Fetch an image in format Y.
        Image_t GetImage(in string name);
    };
};
`

const converterIDL = `
// Value-adding converter: serves the Y-archive's images in format X.
module ImageServiceX {
    struct Image_t {
        string name;
        string format;
        string data;
    };
    typedef sequence<string> Names_t;
    interface COSM_Operations {
        // List the images available for conversion.
        Names_t ListImages();
        // Fetch an image converted to format X.
        Image_t GetImageX(in string name);
        // The underlying Y-format archive, for clients that want the
        // original (a first-class service reference: bind to it!).
        Object Upstream();
    };
};
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// --- Browser infrastructure.
	infra := cosm.NewNode()
	browserSvc, err := browser.NewService(browser.NewDirectory())
	if err != nil {
		return err
	}
	if err := infra.Host(browser.ServiceName, browserSvc); err != nil {
		return err
	}
	if _, err := infra.ListenAndServe("tcp:127.0.0.1:0"); err != nil {
		return err
	}
	defer infra.Close()
	browserRef := infra.MustRefFor(browser.ServiceName)
	bc, err := browser.DialBrowser(ctx, infra.Pool(), browserRef)
	if err != nil {
		return err
	}

	// --- The pre-existing Y-format archive.
	archiveSID, err := sidl.Parse(archiveIDL)
	if err != nil {
		return err
	}
	archiveNode := cosm.NewNode()
	archiveSvc, err := cosm.NewService(archiveSID)
	if err != nil {
		return err
	}
	images := map[string]string{
		"alster":     "Y((alster-panorama))",
		"speicher":   "Y((speicherstadt))",
		"landungsbr": "Y((landungsbruecken))",
	}
	strT := sidl.Basic(sidl.String)
	imageT := archiveSID.Type("Image_t")
	namesT := archiveSID.Type("Names_t")
	archiveSvc.MustHandle("ListImages", func(call *cosm.Call) error {
		elems := make([]*xcode.Value, 0, len(images))
		for _, n := range sortedNames(images) {
			elems = append(elems, xcode.NewString(strT, n))
		}
		seq, err := xcode.NewSequence(namesT, elems...)
		if err != nil {
			return err
		}
		call.Result = seq
		return nil
	})
	archiveSvc.MustHandle("GetImage", func(call *cosm.Call) error {
		name, err := call.Arg("name")
		if err != nil {
			return err
		}
		data, ok := images[name.Str]
		if !ok {
			return fmt.Errorf("no such image %q", name.Str)
		}
		out, err := xcode.NewStruct(imageT, map[string]*xcode.Value{
			"name":   name,
			"format": xcode.NewString(strT, "Y"),
			"data":   xcode.NewString(strT, data),
		})
		if err != nil {
			return err
		}
		call.Result = out
		return nil
	})
	if err := archiveNode.Host("ImageArchiveY", archiveSvc); err != nil {
		return err
	}
	if _, err := archiveNode.ListenAndServe("tcp:127.0.0.1:0"); err != nil {
		return err
	}
	defer archiveNode.Close()
	archiveRef := archiveNode.MustRefFor("ImageArchiveY")
	if err := bc.RegisterSID(ctx, archiveSID, archiveRef); err != nil {
		return err
	}
	fmt.Println("== Y-format archive registered:", archiveRef)

	// --- The value-adding converter. It is a *client* of the archive
	// (generic binding: zero adaptation code) and a *server* to the
	// market (new innovative service, registered immediately — no
	// standardisation needed).
	converterSID, err := sidl.Parse(converterIDL)
	if err != nil {
		return err
	}
	converterNode := cosm.NewNode()
	upstreamGC := genclient.New(converterNode.Pool())
	upstream, err := upstreamGC.BrowseAndBind(ctx, browserRef, "archive")
	if err != nil {
		return err
	}
	fmt.Println("== converter discovered its upstream via the browser:", upstream.Ref())

	converterSvc, err := cosm.NewService(converterSID)
	if err != nil {
		return err
	}
	convImageT := converterSID.Type("Image_t")
	convNamesT := converterSID.Type("Names_t")
	refT := sidl.Basic(sidl.SvcRef)
	converterSvc.MustHandle("ListImages", func(call *cosm.Call) error {
		res, err := upstream.Invoke(ctx, "ListImages")
		if err != nil {
			return err
		}
		// The upstream's sequence value conforms structurally; re-type
		// it for our own result.
		projected, err := res.Value.Project(convNamesT)
		if err != nil {
			return err
		}
		call.Result = projected
		return nil
	})
	converterSvc.MustHandle("GetImageX", func(call *cosm.Call) error {
		name, err := call.Arg("name")
		if err != nil {
			return err
		}
		res, err := upstream.Invoke(ctx, "GetImage", name)
		if err != nil {
			return err
		}
		data, err := res.Value.Field("data")
		if err != nil {
			return err
		}
		converted := "X[" + strings.TrimPrefix(data.Str, "Y") + "]"
		out, err := xcode.NewStruct(convImageT, map[string]*xcode.Value{
			"name":   name,
			"format": xcode.NewString(strT, "X"),
			"data":   xcode.NewString(strT, converted),
		})
		if err != nil {
			return err
		}
		call.Result = out
		return nil
	})
	converterSvc.MustHandle("Upstream", func(call *cosm.Call) error {
		call.Result = xcode.NewRef(refT, archiveRef)
		return nil
	})
	if err := converterNode.Host("ImageServiceX", converterSvc); err != nil {
		return err
	}
	if _, err := converterNode.ListenAndServe("tcp:127.0.0.1:0"); err != nil {
		return err
	}
	defer converterNode.Close()
	converterRef := converterNode.MustRefFor("ImageServiceX")
	if err := bc.RegisterSID(ctx, converterSID, converterRef); err != nil {
		return err
	}
	fmt.Println("== value-adding X-converter registered:", converterRef)

	// --- An end client that wants format X. It finds the converter by
	// keyword and drives it generically.
	clientGC := genclient.New(wire.NewPool())
	b, err := clientGC.BrowseAndBind(ctx, browserRef, "converted")
	if err != nil {
		return err
	}
	fmt.Println("\n== client bound to:", b.SID().ServiceName)

	res, err := b.Invoke(ctx, "ListImages")
	if err != nil {
		return err
	}
	fmt.Println("   images:", res.Value)

	res, err = b.InvokeForm(ctx, "GetImageX", map[string]string{"GetImageX.name": "speicher"})
	if err != nil {
		return err
	}
	format, _ := res.Value.Field("format")
	data, _ := res.Value.Field("data")
	fmt.Printf("   GetImageX(speicher) -> format %s, data %s\n", format.Str, data.Str)

	// --- Cascade: follow the Upstream reference to the original.
	res, err = b.Invoke(ctx, "Upstream")
	if err != nil {
		return err
	}
	original, err := b.BindValue(ctx, res.Value)
	if err != nil {
		return err
	}
	fmt.Printf("\n== cascaded binding (depth %d) to %s\n", original.Depth(), original.SID().ServiceName)
	res, err = original.InvokeForm(ctx, "GetImage", map[string]string{"GetImage.name": "speicher"})
	if err != nil {
		return err
	}
	data, _ = res.Value.Field("data")
	fmt.Printf("   original GetImage(speicher) -> %s\n", data.Str)
	return nil
}

func sortedNames(m map[string]string) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
