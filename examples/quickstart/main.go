// Quickstart: define a service in SIDL, host it on a COSM node, and
// drive it with the generic client — no stubs, no compiled interface
// knowledge on the client side.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"cosm/internal/cosm"
	"cosm/internal/genclient"
	"cosm/internal/sidl"
	"cosm/internal/wire"
	"cosm/internal/xcode"
)

// The service is defined entirely by its SIDL text: types, operations,
// documentation.
const greeterIDL = `
// Greets callers in several languages.
module Greeter {
    enum Language_t { ENGLISH, GERMAN, FRENCH };
    struct Greeting_t {
        string text;
        Language_t language;
    };
    interface COSM_Operations {
        // Produce a greeting for the given name.
        Greeting_t Greet(in string name, in Language_t language);
        // Count greetings made so far.
        long long Count();
    };
    module COSM_UI {
        doc Greet "Say hello to someone";
        doc Greet.name "Who should be greeted?";
    };
};
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// --- Server side: parse the SID, implement the operations, host.
	sid, err := sidl.Parse(greeterIDL)
	if err != nil {
		return err
	}
	svc, err := cosm.NewService(sid)
	if err != nil {
		return err
	}
	var greetings int64
	greetingT := sid.Type("Greeting_t")
	svc.MustHandle("Greet", func(call *cosm.Call) error {
		name, err := call.Arg("name")
		if err != nil {
			return err
		}
		lang, err := call.Arg("language")
		if err != nil {
			return err
		}
		greetings++
		hello := map[string]string{"ENGLISH": "Hello", "GERMAN": "Moin", "FRENCH": "Bonjour"}[lang.EnumLiteral()]
		text := fmt.Sprintf("%s, %s!", hello, name.Str)
		out, err := xcode.NewStruct(greetingT, map[string]*xcode.Value{
			"text":     xcode.NewString(sidl.Basic(sidl.String), text),
			"language": lang,
		})
		if err != nil {
			return err
		}
		call.Result = out
		return nil
	})
	svc.MustHandle("Count", func(call *cosm.Call) error {
		call.Result = xcode.NewInt(sidl.Basic(sidl.Int64), greetings)
		return nil
	})

	node := cosm.NewNode()
	if err := node.Host("Greeter", svc); err != nil {
		return err
	}
	endpoint, err := node.ListenAndServe("tcp:127.0.0.1:0")
	if err != nil {
		return err
	}
	defer node.Close()
	greeterRef := node.MustRefFor("Greeter")
	fmt.Println("== Greeter serving at", greeterRef, "on", endpoint)

	// --- Client side: a generic client that knows NOTHING about the
	// Greeter at compile time. It fetches the SID, generates the UI,
	// and invokes dynamically.
	ctx := context.Background()
	gc := genclient.New(wire.NewPool())
	binding, err := gc.Bind(ctx, greeterRef)
	if err != nil {
		return err
	}

	fmt.Println("\n== SID transferred from the service itself:")
	fmt.Println(indent(binding.SID().IDL()))

	fmt.Println("== Generated user interface (Fig. 7):")
	fmt.Println(indent(binding.RenderUI()))

	fmt.Println("== Dynamic invocations through the generated form:")
	for _, in := range []map[string]string{
		{"Greet.name": "World", "Greet.language": "ENGLISH"},
		{"Greet.name": "Hamburg", "Greet.language": "GERMAN"},
	} {
		res, err := binding.InvokeForm(ctx, "Greet", in)
		if err != nil {
			return err
		}
		text, _ := res.Value.Field("text")
		fmt.Printf("   Greet(%v) -> %s\n", in, text.Str)
	}
	res, err := binding.Invoke(ctx, "Count")
	if err != nil {
		return err
	}
	fmt.Printf("   Count() -> %d greetings\n", res.Value.Int)
	return nil
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "   " + l
	}
	return strings.Join(lines, "\n")
}
