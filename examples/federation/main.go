// Trader federation and browser cascades across administrative domains
// (sections 2.2 and 3.2): Hamburg and Munich each run their own trader
// and browser. The traders are federated; the Munich browser registers
// itself at the Hamburg browser. A Hamburg client then finds Munich's
// offers both ways: a typed federated import with a hop budget, and a
// browser cascade followed by hand.
//
//	go run ./examples/federation
package main

import (
	"context"
	"fmt"
	"log"

	"cosm/internal/browser"
	"cosm/internal/carrental"
	"cosm/internal/cosm"
	"cosm/internal/genclient"
	"cosm/internal/sidl"
	"cosm/internal/trader"
	"cosm/internal/typemgr"
	"cosm/internal/wire"
)

// domain is one administrative domain: a node hosting a trader and a
// browser.
type domain struct {
	name    string
	node    *cosm.Node
	trader  *trader.Trader
	browser *browser.Client
}

func newDomain(ctx context.Context, name string) (*domain, error) {
	repo := typemgr.NewRepo()
	carType, err := typemgr.FromSID(sidl.CarRentalSID())
	if err != nil {
		return nil, err
	}
	if err := repo.Define(carType); err != nil {
		return nil, err
	}
	d := &domain{name: name, node: cosm.NewNode(), trader: trader.New(name, repo)}
	traderSvc, err := trader.NewService(d.trader)
	if err != nil {
		return nil, err
	}
	browserSvc, err := browser.NewService(browser.NewDirectory())
	if err != nil {
		return nil, err
	}
	if err := d.node.Host(trader.ServiceName, traderSvc); err != nil {
		return nil, err
	}
	if err := d.node.Host(browser.ServiceName, browserSvc); err != nil {
		return nil, err
	}
	if _, err := d.node.ListenAndServe("tcp:127.0.0.1:0"); err != nil {
		return nil, err
	}
	if d.browser, err = browser.DialBrowser(ctx, d.node.Pool(), d.node.MustRefFor(browser.ServiceName)); err != nil {
		return nil, err
	}
	return d, nil
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	hamburg, err := newDomain(ctx, "hamburg")
	if err != nil {
		return err
	}
	defer hamburg.node.Close()
	munich, err := newDomain(ctx, "munich")
	if err != nil {
		return err
	}
	defer munich.node.Close()
	fmt.Println("== hamburg domain at", hamburg.node.Endpoint())
	fmt.Println("== munich domain at", munich.node.Endpoint())

	// Federate the traders over the wire, both directions.
	munichTrader, err := trader.DialTrader(ctx, hamburg.node.Pool(), munich.node.MustRefFor(trader.ServiceName))
	if err != nil {
		return err
	}
	if err := hamburg.trader.AddLink("munich", munichTrader); err != nil {
		return err
	}
	hamburgTrader, err := trader.DialTrader(ctx, munich.node.Pool(), hamburg.node.MustRefFor(trader.ServiceName))
	if err != nil {
		return err
	}
	if err := munich.trader.AddLink("hamburg", hamburgTrader); err != nil {
		return err
	}
	fmt.Println("== traders federated (hamburg <-> munich)")

	// Cascade the browsers: munich's browser registers at hamburg's.
	munichBrowserSID, err := cosm.Describe(ctx, hamburg.node.Pool(), munich.node.MustRefFor(browser.ServiceName))
	if err != nil {
		return err
	}
	munichBrowserSID.ServiceName = "MunichBrowser" // distinguish in listings
	if err := hamburg.browser.RegisterSID(ctx, munichBrowserSID, munich.node.MustRefFor(browser.ServiceName)); err != nil {
		return err
	}
	fmt.Println("== munich browser registered at hamburg browser (cascade)")

	// A provider publishes only in Munich.
	providerNode := cosm.NewNode()
	svc, impl, err := carrental.New(carrental.WithTariff(carrental.Tariff{"VW_Golf": 70}))
	if err != nil {
		return err
	}
	if err := providerNode.Host("IsarCars", svc); err != nil {
		return err
	}
	if _, err := providerNode.ListenAndServe("tcp:127.0.0.1:0"); err != nil {
		return err
	}
	defer providerNode.Close()
	providerRef := providerNode.MustRefFor("IsarCars")

	providerSID := impl.SID().Clone()
	providerSID.ServiceName = "IsarCars"
	munichTC, err := trader.DialTrader(ctx, providerNode.Pool(), munich.node.MustRefFor(trader.ServiceName))
	if err != nil {
		return err
	}
	munichBC, err := browser.DialBrowser(ctx, providerNode.Pool(), munich.node.MustRefFor(browser.ServiceName))
	if err != nil {
		return err
	}
	if _, err := carrental.Publish(ctx, providerSID, providerRef, munichBC, munichTC); err != nil {
		return err
	}
	fmt.Println("== IsarCars published in munich only:", providerRef)

	// --- A Hamburg client imports with and without a hop budget.
	hamburgTC, err := trader.DialTrader(ctx, hamburg.node.Pool(), hamburg.node.MustRefFor(trader.ServiceName))
	if err != nil {
		return err
	}
	local, err := hamburgTC.ImportWith(ctx, "CarRentalService")
	if err != nil {
		return err
	}
	fmt.Printf("\n== hamburg import, hop limit 0: %d offers (munich invisible)\n", len(local))

	federated, err := hamburgTC.ImportWith(ctx, "CarRentalService", trader.Hops(1))
	if err != nil {
		return err
	}
	fmt.Printf("== hamburg import, hop limit 1: %d offer(s):\n", len(federated))
	for _, o := range federated {
		fmt.Printf("   %-12s %-20s %s\n", o.ID, o.Type, o.Ref)
	}

	// --- The same discovery via the browser cascade.
	gc := genclient.New(wire.NewPool())
	entries, err := gc.Browse(ctx, hamburg.node.MustRefFor(browser.ServiceName), "browser")
	if err != nil {
		return err
	}
	fmt.Printf("\n== hamburg browser lists %d cascaded browser(s)\n", len(entries))
	remote, err := gc.Browse(ctx, entries[0].Ref, "rent")
	if err != nil {
		return err
	}
	fmt.Printf("== following the cascade to munich finds: %s at %s\n", remote[0].Name, remote[0].Ref)

	// --- Bind through whichever path and book.
	binding, err := gc.Bind(ctx, federated[0].Ref)
	if err != nil {
		return err
	}
	if _, err := binding.InvokeForm(ctx, "SelectCar", map[string]string{
		"SelectCar.selection.model": "VW_Golf",
		"SelectCar.selection.days":  "2",
	}); err != nil {
		return err
	}
	res, err := binding.Invoke(ctx, "Commit")
	if err != nil {
		return err
	}
	confirmation, _ := res.Value.Field("confirmation")
	fmt.Println("\n== booked across domains:", confirmation.Str)
	return nil
}
