// Transition-cost study (sections 2.2 and 2.3): simulate the open
// service market under the three regimes and show the paper's argument
// quantitatively — trading-only delays innovative services by the
// standardisation window and charges every client an adaptation cost;
// mediation serves immediately at a small per-use overhead; the
// integrated COSM regime dominates. Also sweeps the standardisation
// delay and prints the per-client crossover where a matured, statically
// adapted service starts to beat the generic client on marginal cost.
//
//	go run ./examples/market
package main

import (
	"fmt"
	"log"

	"cosm/internal/market"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p := market.DefaultParams()
	p.Days = 365

	fmt.Println("== one year of the Common Open Service Market ==")
	fmt.Printf("   standardisation delay %d days; client adaptation %g units; generic overhead %g/use\n\n",
		p.StandardisationDelayDays, p.CostClientDev, p.CostGenericUseOverhead)

	results, err := market.Compare(p)
	if err != nil {
		return err
	}
	fmt.Printf("   %-16s %9s %9s %9s %11s %11s %11s\n",
		"regime", "served", "unmet", "ttfu(d)", "clientdev$", "overhead$", "net")
	for _, regime := range []market.Regime{market.TradingOnly, market.MediationOnly, market.Integrated} {
		m := results[regime]
		fmt.Printf("   %-16s %9d %9d %9.1f %11.1f %11.1f %11.1f\n",
			m.Regime, m.UsesServed, m.UnmetDemand, m.MeanTimeToFirstUse,
			m.ClientDevCost, m.OverheadCost, m.NetUtility)
	}

	fmt.Println("\n== standardisation delay sweep (trading-only unmet demand) ==")
	fmt.Printf("   %-10s %14s %16s\n", "delay(d)", "trading-unmet", "mediation-unmet")
	for _, delay := range []int{15, 30, 60, 90, 150} {
		ps := p
		ps.StandardisationDelayDays = delay
		tr, err := market.Run(ps, market.TradingOnly)
		if err != nil {
			return err
		}
		me, err := market.Run(ps, market.MediationOnly)
		if err != nil {
			return err
		}
		fmt.Printf("   %-10d %14d %16d\n", delay, tr.UnmetDemand, me.UnmetDemand)
	}

	fmt.Println("\n== \"being the first pays most\" (section 2.2) ==")
	fmt.Printf("   innovator's share of its category's uses: mediation %.0f%%, trading-only %.0f%%\n",
		100*results[market.MediationOnly].FirstMoverShare,
		100*results[market.TradingOnly].FirstMoverShare)
	fmt.Println("   (standardisation surfaces all competitors at once and erodes the head start)")

	n, err := market.CrossoverUses(p)
	if err != nil {
		return err
	}
	fmt.Printf("\n== crossover: a client must make %.0f uses of one service type before\n", n)
	fmt.Println("   paying for a conventional client beats the generic client's overhead —")
	fmt.Println("   below that, mediation is strictly cheaper (section 2.3).")
	return nil
}
