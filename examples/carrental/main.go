// The paper's running example, end to end: three car rental companies
// publish their services in the Common Open Service Market; a client
// finds them both ways — by browsing (mediation, Fig. 4) and by typed
// trader import with constraints and selection policies (Fig. 1) — then
// books a car through the generated user interface while the FSM
// protocol is enforced on both sides.
//
//	go run ./examples/carrental
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"cosm/internal/browser"
	"cosm/internal/carrental"
	"cosm/internal/cosm"
	"cosm/internal/genclient"
	"cosm/internal/naming"
	"cosm/internal/sidl"
	"cosm/internal/trader"
	"cosm/internal/typemgr"
	"cosm/internal/wire"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()

	// --- Infrastructure node: name server, browser, trader (Fig. 6).
	infra := cosm.NewNode()
	nameSvc, err := naming.NewService(naming.NewRegistry())
	if err != nil {
		return err
	}
	browserSvc, err := browser.NewService(browser.NewDirectory())
	if err != nil {
		return err
	}
	repo := typemgr.NewRepo()
	carType, err := typemgr.FromSID(sidl.CarRentalSID())
	if err != nil {
		return err
	}
	if err := repo.Define(carType); err != nil {
		return err
	}
	tr := trader.New("hamburg", repo)
	traderSvc, err := trader.NewService(tr)
	if err != nil {
		return err
	}
	for name, svc := range map[string]*cosm.Service{
		naming.ServiceName:  nameSvc,
		browser.ServiceName: browserSvc,
		trader.ServiceName:  traderSvc,
	} {
		if err := infra.Host(name, svc); err != nil {
			return err
		}
	}
	if _, err := infra.ListenAndServe("tcp:127.0.0.1:0"); err != nil {
		return err
	}
	defer infra.Close()
	fmt.Println("== infrastructure node at", infra.Endpoint())

	// Register the well-known components at the name server.
	nc, err := naming.DialNameServer(ctx, infra.Pool(), infra.MustRefFor(naming.ServiceName))
	if err != nil {
		return err
	}
	for _, svcName := range []string{browser.ServiceName, trader.ServiceName} {
		if err := nc.Register(ctx, svcName, infra.MustRefFor(svcName)); err != nil {
			return err
		}
	}

	// --- Three competing providers on their own nodes.
	type company struct {
		name   string
		tariff carrental.Tariff
	}
	companies := []company{
		{"AlsterCars", carrental.Tariff{"AUDI": 110, "FIAT_Uno": 85, "VW_Golf": 95}},
		{"ElbeRental", carrental.Tariff{"AUDI": 125, "FIAT_Uno": 78, "VW_Golf": 99}},
		{"HafenAutos", carrental.Tariff{"FIAT_Uno": 92}},
	}
	bc, err := browser.DialBrowser(ctx, infra.Pool(), infra.MustRefFor(browser.ServiceName))
	if err != nil {
		return err
	}
	tc, err := trader.DialTrader(ctx, infra.Pool(), infra.MustRefFor(trader.ServiceName))
	if err != nil {
		return err
	}
	for _, co := range companies {
		node := cosm.NewNode()
		svc, impl, err := carrental.New(carrental.WithTariff(co.tariff))
		if err != nil {
			return err
		}
		if err := node.Host(co.name, svc); err != nil {
			return err
		}
		if _, err := node.ListenAndServe("tcp:127.0.0.1:0"); err != nil {
			return err
		}
		defer node.Close()

		// Publish: the SID with per-company trader export properties.
		sid := impl.SID().Clone()
		sid.ServiceName = co.name
		fiat := co.tariff["FIAT_Uno"]
		for i, p := range sid.Trader.Properties {
			if p.Name == "ChargePerDay" {
				sid.Trader.Properties[i].Value = sidl.FloatLit(fiat)
			}
		}
		self := node.MustRefFor(co.name)
		if _, err := carrental.Publish(ctx, sid, self, bc, tc); err != nil {
			return err
		}
		fmt.Printf("== %s published at %s (FIAT_Uno at %.0f/day)\n", co.name, self, fiat)
	}

	// --- Path 1: browser mediation. The client knows only a keyword.
	pool := wire.NewPool()
	defer pool.Close()
	gc := genclient.New(pool)
	fmt.Println("\n== browsing for \"rent\" (mediation, Fig. 4):")
	entries, err := gc.Browse(ctx, infra.MustRefFor(browser.ServiceName), "rent")
	if err != nil {
		return err
	}
	for _, e := range entries {
		fmt.Printf("   %-12s %s\n", e.Name, e.Ref)
	}

	// --- Path 2: typed trader import (Fig. 1): cheapest FIAT_Uno.
	fmt.Println("\n== trader import: CarRentalService, ChargePerDay < 90, min:ChargePerDay")
	offer, err := tc.ImportOneWith(ctx, "CarRentalService",
		trader.Where("CarModel == FIAT_Uno && ChargePerDay < 90"),
		trader.OrderBy("min:ChargePerDay"))
	if err != nil {
		return err
	}
	fmt.Printf("   best offer: %s at %s (%.0f/day)\n",
		offer.ID, offer.Ref, offer.Props["ChargePerDay"].Float)

	// --- Bind and book through the generated UI, FSM enforced.
	binding, err := gc.Bind(ctx, offer.Ref)
	if err != nil {
		return err
	}
	fmt.Println("\n== booking at the selected provider:")
	fmt.Printf("   state: %s, allowed: %v\n", binding.State(), binding.AllowedOps())

	// An illegal Commit is intercepted locally, before any RPC.
	if _, err := binding.Invoke(ctx, "Commit"); errors.Is(err, genclient.ErrProtocol) {
		fmt.Println("   Commit in INIT intercepted locally:", err)
	}

	res, err := binding.InvokeForm(ctx, "SelectCar", map[string]string{
		"SelectCar.selection.model":       "FIAT_Uno",
		"SelectCar.selection.bookingDate": "1994-06-21",
		"SelectCar.selection.days":        "3",
	})
	if err != nil {
		return err
	}
	charge, _ := res.Value.Field("charge")
	fmt.Printf("   SelectCar(FIAT_Uno, 3 days) -> charge %.0f, state %s\n", charge.Float, binding.State())

	res, err = binding.Invoke(ctx, "Commit")
	if err != nil {
		return err
	}
	confirmation, _ := res.Value.Field("confirmation")
	fmt.Printf("   Commit() -> %s, state %s\n", confirmation.Str, binding.State())

	// The name server still resolves the infrastructure for newcomers.
	traderRef, err := nc.Resolve(ctx, trader.ServiceName)
	if err != nil {
		return err
	}
	fmt.Println("\n== name server resolves", trader.ServiceName, "->", traderRef)
	return nil
}
